//! Harnesses for Figure 3 (impact of the optimization tiers) and Figure 4
//! (adaptive workloads: benefit ratio, α, synthetic-query count).

use ttmqo_core::{
    run_campaign, BaseStationOptimizer, CampaignSpec, CostModel, ExperimentConfig,
    OptimizerOptions, Strategy, WorkloadAction, WorkloadEvent,
};
use ttmqo_sim::{SimTime, Topology};
use ttmqo_stats::{EmpiricalDistribution, LevelStats, SelectivityEstimator};

/// Simulated duration of each Figure 3 cell, in base epochs.
pub const FIG3_DURATION_EPOCHS: u64 = 96;

/// One cell of the Figure 3 matrix.
#[derive(Debug, Clone)]
pub struct Fig3Cell {
    /// Workload name ("A", "B" or "C").
    pub workload: &'static str,
    /// Number of nodes (16 or 64).
    pub nodes: usize,
    /// Strategy.
    pub strategy: Strategy,
    /// Average transmission time, percent.
    pub avg_tx_pct: f64,
    /// Savings vs. the baseline of the same (workload, nodes), percent.
    pub savings_pct: f64,
}

/// The Figure 3 sweep as a campaign: workloads A/B/C × {4×4, 8×8} grids ×
/// all four strategies over the default experiment configuration.
pub fn fig3_campaign(duration_epochs: u64) -> CampaignSpec {
    let base = ExperimentConfig {
        duration: SimTime::from_ms(duration_epochs * 2048),
        ..ExperimentConfig::default()
    };
    CampaignSpec::new(base)
        .strategies(Strategy::ALL)
        .grid_sizes([4, 8])
        .workload("A", ttmqo_workloads::workload_a())
        .workload("B", ttmqo_workloads::workload_b())
        .workload("C", ttmqo_workloads::workload_c())
}

/// Runs the full Figure 3 matrix: workloads A/B/C × {16, 64} nodes × all four
/// strategies, one campaign cell per thread-pool slot (the 24 cells are
/// independent simulations; results are identical to running them one by
/// one).
pub fn fig3_matrix(duration_epochs: u64) -> Vec<Fig3Cell> {
    let spec = fig3_campaign(duration_epochs);
    let report = run_campaign(&spec);
    let mut cells = Vec::with_capacity(report.cells.len());
    for name in ["A", "B", "C"] {
        for grid_n in [4usize, 8] {
            let base = report
                .cell(name, Strategy::Baseline, grid_n, spec.base.field_seed)
                .expect("baseline cell ran")
                .avg_transmission_time_pct();
            for strategy in Strategy::ALL {
                let tx = report
                    .cell(name, strategy, grid_n, spec.base.field_seed)
                    .expect("cell ran")
                    .avg_transmission_time_pct();
                cells.push(Fig3Cell {
                    workload: name,
                    nodes: grid_n * grid_n,
                    strategy,
                    avg_tx_pct: tx,
                    savings_pct: if base > 0.0 {
                        100.0 * (1.0 - tx / base)
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    cells
}

/// Result of running a workload through the base-station optimizer alone
/// (the Figure 4 measurements are pure tier-1 metrics — no network needed).
#[derive(Debug, Clone, Copy)]
pub struct OptimizerSweep {
    /// Time-weighted mean benefit ratio
    /// (`(Σ user cost − Σ synthetic cost) / Σ user cost`).
    pub benefit_ratio: f64,
    /// Time-weighted mean number of running synthetic queries.
    pub avg_synthetic_count: f64,
    /// Time-weighted mean number of running user queries.
    pub avg_user_count: f64,
    /// Peak synthetic-query count.
    pub max_synthetic_count: usize,
    /// Total query injections sent to the network.
    pub injections: u64,
    /// Total query abortions sent to the network.
    pub abortions: u64,
    /// Insertions absorbed entirely at the base station.
    pub absorbed_insertions: u64,
    /// Terminations absorbed entirely at the base station.
    pub absorbed_terminations: u64,
    /// Time-integrated user-query cost (airtime ms over the whole run).
    pub user_cost_integral: f64,
    /// Time-integrated synthetic-query cost (airtime ms over the whole run).
    pub synthetic_cost_integral: f64,
}

impl OptimizerSweep {
    /// Benefit ratio *net of re-optimization cost*: every query injection or
    /// abortion floods the whole network once, and those floods are "also
    /// costly operations" (§3.1.4). `flood_airtime_ms` is the airtime of one
    /// flood (≈ nodes × per-message transmission time).
    pub fn net_benefit_ratio(&self, flood_airtime_ms: f64) -> f64 {
        if self.user_cost_integral <= 0.0 {
            return 0.0;
        }
        let saved = self.user_cost_integral - self.synthetic_cost_integral;
        let reopt = (self.injections + self.abortions) as f64 * flood_airtime_ms;
        (saved - reopt) / self.user_cost_integral
    }
}

/// Replays a workload through the optimizer, accumulating time-weighted
/// statistics (Figure 4's measurements).
pub fn optimizer_sweep(events: &[WorkloadEvent], alpha: f64, grid_n: usize) -> OptimizerSweep {
    optimizer_sweep_with(
        events,
        OptimizerOptions {
            alpha,
            ..OptimizerOptions::default()
        },
        grid_n,
    )
}

/// [`optimizer_sweep`] with full control over the optimizer knobs
/// (ablations).
pub fn optimizer_sweep_with(
    events: &[WorkloadEvent],
    options: OptimizerOptions,
    grid_n: usize,
) -> OptimizerSweep {
    let topo = Topology::grid(grid_n).expect("valid grid");
    let levels = LevelStats::from_levels(topo.levels().iter().copied());
    let mut estimator = SelectivityEstimator::uniform();
    estimator.set_model(
        ttmqo_query::Attribute::NodeId,
        Box::new(EmpiricalDistribution::from_samples(
            ttmqo_query::Attribute::NodeId,
            topo.node_count(),
            (1..topo.node_count()).map(|i| i as f64),
        )),
    );
    let model = CostModel::new(4.0, 0.2, levels, estimator);
    let mut opt = BaseStationOptimizer::with_options(model, options);

    let mut events: Vec<WorkloadEvent> = events.to_vec();
    events.sort_by_key(|e| e.at);

    let mut weighted_ratio = 0.0;
    let mut weighted_syn = 0.0;
    let mut weighted_users = 0.0;
    let mut user_cost_integral = 0.0;
    let mut synthetic_cost_integral = 0.0;
    let mut max_syn = 0usize;
    let mut last_t = 0u64;
    for event in &events {
        let t = event.at.as_ms();
        let dt = (t - last_t) as f64;
        weighted_ratio += opt.benefit_ratio() * dt;
        weighted_syn += opt.synthetic_count() as f64 * dt;
        weighted_users += opt.user_count() as f64 * dt;
        user_cost_integral += opt.total_user_cost() * dt;
        synthetic_cost_integral += opt.total_synthetic_cost() * dt;
        last_t = t;
        match &event.action {
            WorkloadAction::Pose(q) => {
                opt.insert(q.clone()).expect("workload ids are valid");
            }
            WorkloadAction::Terminate(qid) => {
                opt.terminate(*qid);
            }
        }
        max_syn = max_syn.max(opt.synthetic_count());
    }
    let total = last_t.max(1) as f64;
    let stats = opt.stats();
    OptimizerSweep {
        benefit_ratio: weighted_ratio / total,
        avg_synthetic_count: weighted_syn / total,
        avg_user_count: weighted_users / total,
        max_synthetic_count: max_syn,
        injections: stats.injections,
        abortions: stats.abortions,
        absorbed_insertions: stats.absorbed_insertions,
        absorbed_terminations: stats.absorbed_terminations,
        user_cost_integral,
        synthetic_cost_integral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_workloads::{random_workload, RandomWorkloadParams};

    #[test]
    fn benefit_ratio_grows_with_concurrency() {
        // The Figure 4(a) shape: more concurrent queries ⇒ more sharing.
        let sweep = |concurrency: f64| {
            let events = random_workload(&RandomWorkloadParams {
                n_queries: 150,
                target_concurrency: concurrency,
                seed: 11,
                ..RandomWorkloadParams::default()
            });
            optimizer_sweep(&events, 0.6, 4).benefit_ratio
        };
        let low = sweep(8.0);
        let high = sweep(48.0);
        assert!(
            high > low + 0.1,
            "benefit ratio must grow with concurrency: {low:.3} -> {high:.3}"
        );
        assert!(
            low > 0.05,
            "even 8 concurrent queries share something: {low:.3}"
        );
    }

    #[test]
    fn synthetic_count_stays_small() {
        // The Figure 4(c) shape: < 4 synthetic queries even at 48 concurrent.
        let events = random_workload(&RandomWorkloadParams {
            n_queries: 200,
            target_concurrency: 48.0,
            seed: 3,
            ..RandomWorkloadParams::default()
        });
        let sweep = optimizer_sweep(&events, 0.6, 4);
        assert!(
            sweep.avg_synthetic_count < sweep.avg_user_count / 3.0,
            "synthetics {:.2} vs users {:.2}",
            sweep.avg_synthetic_count,
            sweep.avg_user_count
        );
    }

    #[test]
    fn fig3_shape_holds_on_small_runs() {
        // Short-duration sanity check of the Figure 3 orderings.
        let cells = fig3_matrix(24);
        let get = |w: &str, n: usize, s: Strategy| {
            cells
                .iter()
                .find(|c| c.workload == w && c.nodes == n && c.strategy == s)
                .map(|c| c.avg_tx_pct)
                .expect("cell exists")
        };
        for w in ["A", "B", "C"] {
            for n in [16, 64] {
                let base = get(w, n, Strategy::Baseline);
                let two = get(w, n, Strategy::TwoTier);
                assert!(two < base, "{w}/{n}: two-tier {two} !< baseline {base}");
            }
        }
        // Workload B: the in-network tier is the one that helps.
        assert!(get("B", 64, Strategy::InNetOnly) < get("B", 64, Strategy::BsOnly));
    }
}
