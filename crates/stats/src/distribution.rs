//! Data-distribution models behind `sel(q, N_k)` in Eq. (1).
//!
//! The paper maintains "the data distribution … at each level of the routing
//! tree", but its experiments deliberately use a *single* distribution for all
//! levels ("which actually biases against our techniques"). Both modes are
//! supported: a [`DataDistribution`] estimates one attribute's distribution,
//! and [`SelectivityEstimator`] combines per-attribute models into the
//! selectivity of a conjunctive predicate set under the usual independence
//! assumption.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt::Debug;
use ttmqo_query::{Attribute, PredicateSet};

/// A model of one attribute's value distribution.
///
/// Implementors estimate the fraction of readings falling inside a closed
/// range. This trait is object-safe so estimators can mix model types per
/// attribute.
pub trait DataDistribution: Debug {
    /// Estimated fraction of readings in `[min, max]`, in `[0, 1]`.
    fn fraction_in(&self, min: f64, max: f64) -> f64;
}

/// Uniform distribution over an attribute's whole domain — the estimator the
/// paper's experiments use.
///
/// # Examples
///
/// ```
/// use ttmqo_stats::{DataDistribution, UniformDistribution};
/// use ttmqo_query::Attribute;
///
/// let u = UniformDistribution::new(Attribute::Light);
/// assert!((u.fraction_in(0.0, 500.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformDistribution {
    attr: Attribute,
}

impl UniformDistribution {
    /// Uniform model over `attr`'s domain.
    pub fn new(attr: Attribute) -> Self {
        UniformDistribution { attr }
    }
}

impl DataDistribution for UniformDistribution {
    fn fraction_in(&self, min: f64, max: f64) -> f64 {
        let (lo, hi) = self.attr.domain();
        let width = hi - lo;
        if width <= 0.0 || min > max {
            return 0.0;
        }
        ((max.min(hi) - min.max(lo)).max(0.0) / width).clamp(0.0, 1.0)
    }
}

/// Histogram-backed empirical distribution, built from observed readings.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    histogram: Histogram,
}

impl EmpiricalDistribution {
    /// Builds an empirical model for `attr` with `buckets` buckets from the
    /// given samples. Falls back to zero-mass (empty histogram) when no
    /// samples are provided.
    pub fn from_samples<I: IntoIterator<Item = f64>>(
        attr: Attribute,
        buckets: usize,
        samples: I,
    ) -> Self {
        let (lo, hi) = attr.domain();
        let mut histogram =
            Histogram::new(lo, hi, buckets.max(1)).expect("attribute domains are non-empty");
        for s in samples {
            histogram.add(s);
        }
        EmpiricalDistribution { histogram }
    }

    /// Number of samples folded in.
    pub fn sample_count(&self) -> u64 {
        self.histogram.total()
    }

    /// Records one more observation.
    pub fn observe(&mut self, value: f64) {
        self.histogram.add(value);
    }

    /// The backing histogram (for serialization).
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Wraps an already-built histogram (the inverse of
    /// [`histogram`](Self::histogram)).
    pub fn from_histogram(histogram: Histogram) -> Self {
        EmpiricalDistribution { histogram }
    }
}

impl DataDistribution for EmpiricalDistribution {
    fn fraction_in(&self, min: f64, max: f64) -> f64 {
        self.histogram.fraction_in(min, max)
    }
}

/// Estimates the selectivity of conjunctive predicate sets by combining
/// per-attribute distributions under attribute independence.
///
/// Attributes with no registered model fall back to the uniform model, which
/// is exactly the configuration of the paper's experiments.
///
/// # Examples
///
/// ```
/// use ttmqo_stats::SelectivityEstimator;
/// use ttmqo_query::{Attribute, Predicate, PredicateSet};
///
/// let est = SelectivityEstimator::uniform();
/// let mut ps = PredicateSet::new();
/// ps.and(Predicate::new(Attribute::Light, 0.0, 250.0).unwrap());
/// assert!((est.selectivity(&ps) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct SelectivityEstimator {
    models: BTreeMap<Attribute, Box<dyn DataDistribution + Send + Sync>>,
    /// Online empirical models fed by [`observe`](Self::observe); once an
    /// attribute has enough observations they take precedence over the
    /// static model (§3.1.2's maintained data distributions).
    adaptive: BTreeMap<Attribute, EmpiricalDistribution>,
    /// Observations required before an adaptive model is trusted.
    warmup: u64,
}

impl SelectivityEstimator {
    /// An estimator with no per-attribute models: every attribute uses the
    /// uniform fallback.
    pub fn uniform() -> Self {
        SelectivityEstimator {
            warmup: 64,
            ..Self::default()
        }
    }

    /// Overrides how many observations an adaptive model needs before it is
    /// trusted over the static model.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Feeds one observed reading into the attribute's online empirical
    /// model — the paper's maintained statistics: the base station watches
    /// the result stream and keeps per-attribute data distributions current.
    pub fn observe(&mut self, attr: Attribute, value: f64) {
        self.adaptive
            .entry(attr)
            .or_insert_with(|| EmpiricalDistribution::from_samples(attr, 32, []))
            .observe(value);
    }

    /// Observations accumulated for an attribute.
    pub fn observation_count(&self, attr: Attribute) -> u64 {
        self.adaptive.get(&attr).map_or(0, |m| m.sample_count())
    }

    /// Observations required before adaptive models are trusted.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// The online empirical models in attribute order (for serialization;
    /// the static [`set_model`](Self::set_model) models are trait objects
    /// and must be re-registered instead).
    pub fn adaptive_models(&self) -> impl Iterator<Item = (Attribute, &EmpiricalDistribution)> {
        self.adaptive.iter().map(|(a, m)| (*a, m))
    }

    /// Reinstalls a previously captured adaptive model for one attribute
    /// (the inverse of [`adaptive_models`](Self::adaptive_models)).
    pub fn set_adaptive(&mut self, attr: Attribute, model: EmpiricalDistribution) {
        self.adaptive.insert(attr, model);
    }

    /// Registers a distribution model for one attribute, replacing any
    /// previous model.
    pub fn set_model(
        &mut self,
        attr: Attribute,
        model: Box<dyn DataDistribution + Send + Sync>,
    ) -> &mut Self {
        self.models.insert(attr, model);
        self
    }

    /// Estimated selectivity of the conjunction: the product of per-attribute
    /// range fractions. Warmed-up adaptive models win over static models,
    /// which win over the uniform fallback.
    pub fn selectivity(&self, predicates: &PredicateSet) -> f64 {
        predicates
            .iter()
            .map(|p| {
                if let Some(m) = self.adaptive.get(&p.attr()) {
                    if m.sample_count() >= self.warmup {
                        return m.fraction_in(p.min(), p.max());
                    }
                }
                match self.models.get(&p.attr()) {
                    Some(m) => m.fraction_in(p.min(), p.max()),
                    None => UniformDistribution::new(p.attr()).fraction_in(p.min(), p.max()),
                }
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::Predicate;

    #[test]
    fn uniform_matches_domain_fraction() {
        let u = UniformDistribution::new(Attribute::Humidity); // domain [0, 100]
        assert!((u.fraction_in(25.0, 75.0) - 0.5).abs() < 1e-12);
        assert_eq!(u.fraction_in(200.0, 300.0), 0.0);
        assert_eq!(u.fraction_in(75.0, 25.0), 0.0);
        assert!((u.fraction_in(-100.0, 1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_reflects_samples() {
        let e = EmpiricalDistribution::from_samples(
            Attribute::Humidity,
            10,
            (0..100).map(|i| if i < 80 { 5.0 } else { 95.0 }),
        );
        assert_eq!(e.sample_count(), 100);
        assert!((e.fraction_in(0.0, 10.0) - 0.8).abs() < 1e-9);
        assert!((e.fraction_in(90.0, 100.0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empirical_observe_updates() {
        let mut e = EmpiricalDistribution::from_samples(Attribute::Humidity, 10, []);
        assert_eq!(e.sample_count(), 0);
        e.observe(50.0);
        assert_eq!(e.sample_count(), 1);
        assert!(e.fraction_in(40.0, 60.0) > 0.9);
    }

    #[test]
    fn estimator_defaults_to_uniform() {
        let est = SelectivityEstimator::uniform();
        let mut ps = PredicateSet::new();
        ps.and(Predicate::new(Attribute::Light, 0.0, 100.0).unwrap());
        ps.and(Predicate::new(Attribute::Humidity, 0.0, 50.0).unwrap());
        // 0.1 * 0.5 under independence.
        assert!((est.selectivity(&ps) - 0.05).abs() < 1e-12);
        assert_eq!(est.selectivity(&PredicateSet::new()), 1.0);
    }

    #[test]
    fn adaptive_model_takes_over_after_warmup() {
        let mut est = SelectivityEstimator::uniform().with_warmup(10);
        let mut ps = PredicateSet::new();
        ps.and(Predicate::new(Attribute::Light, 900.0, 1000.0).unwrap());
        // Before warmup: uniform says 10%.
        assert!((est.selectivity(&ps) - 0.1).abs() < 1e-12);
        for _ in 0..5 {
            est.observe(Attribute::Light, 950.0);
        }
        assert!(
            (est.selectivity(&ps) - 0.1).abs() < 1e-12,
            "not warmed up yet"
        );
        for _ in 0..5 {
            est.observe(Attribute::Light, 950.0);
        }
        assert_eq!(est.observation_count(Attribute::Light), 10);
        // All observed mass sits in [900, 1000]: adaptive estimate ≈ 1.
        assert!(est.selectivity(&ps) > 0.9, "got {}", est.selectivity(&ps));
    }

    #[test]
    fn adaptive_beats_static_model_once_warm() {
        let mut est = SelectivityEstimator::uniform().with_warmup(4);
        est.set_model(
            Attribute::Light,
            Box::new(EmpiricalDistribution::from_samples(
                Attribute::Light,
                10,
                std::iter::repeat_n(50.0, 100),
            )),
        );
        let mut ps = PredicateSet::new();
        ps.and(Predicate::new(Attribute::Light, 0.0, 100.0).unwrap());
        assert!(est.selectivity(&ps) > 0.9, "static model says low values");
        for _ in 0..4 {
            est.observe(Attribute::Light, 800.0);
        }
        assert!(est.selectivity(&ps) < 0.1, "adaptive sees only high values");
    }

    #[test]
    fn estimator_uses_registered_model() {
        let mut est = SelectivityEstimator::uniform();
        let skewed = EmpiricalDistribution::from_samples(
            Attribute::Light,
            10,
            std::iter::repeat_n(950.0, 100),
        );
        est.set_model(Attribute::Light, Box::new(skewed));
        let mut ps = PredicateSet::new();
        ps.and(Predicate::new(Attribute::Light, 900.0, 1000.0).unwrap());
        assert!(est.selectivity(&ps) > 0.9, "skewed model should dominate");
    }
}
