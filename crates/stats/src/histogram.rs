//! Equi-width histograms for selectivity estimation.

use std::fmt;

/// An equi-width histogram over a closed value range.
///
/// Used to estimate `sel(q, N_k)` (Eq. 1) from observed sensor readings when
/// the uniform assumption is not wanted. Mass falling outside the configured
/// range is clamped into the boundary buckets.
///
/// # Examples
///
/// ```
/// use ttmqo_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10)?;
/// for v in [5.0, 15.0, 15.5, 95.0] {
///     h.add(v);
/// }
/// assert_eq!(h.total(), 4);
/// assert!((h.fraction_in(10.0, 20.0) - 0.5).abs() < 1e-9);
/// # Ok::<(), ttmqo_stats::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
}

/// Error constructing a histogram with an invalid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// The range was empty or not finite.
    InvalidRange,
    /// Zero buckets were requested.
    NoBuckets,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::InvalidRange => f.write_str("histogram range is empty or not finite"),
            HistogramError::NoBuckets => f.write_str("histogram needs at least one bucket"),
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi]` with `buckets` equal-width
    /// buckets.
    ///
    /// # Errors
    ///
    /// [`HistogramError::InvalidRange`] if `lo >= hi` or either bound is not
    /// finite; [`HistogramError::NoBuckets`] if `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self, HistogramError> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(HistogramError::InvalidRange);
        }
        if buckets == 0 {
            return Err(HistogramError::NoBuckets);
        }
        Ok(Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            total: 0,
        })
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Raw per-bucket counts, lowest bucket first (for serialization).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Lower bound of the configured range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the configured range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation; values outside the range land in the nearest
    /// boundary bucket.
    pub fn add(&mut self, value: f64) {
        let idx = self.bucket_of(value);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    fn bucket_of(&self, value: f64) -> usize {
        let n = self.buckets.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        ((frac * n as f64).floor() as isize).clamp(0, n as isize - 1) as usize
    }

    fn bucket_bounds(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (
            self.lo + idx as f64 * width,
            self.lo + (idx + 1) as f64 * width,
        )
    }

    /// Estimated fraction of observations in `[min, max]`, with linear
    /// interpolation inside partially covered buckets.
    ///
    /// Returns 0.0 on an empty histogram.
    pub fn fraction_in(&self, min: f64, max: f64) -> f64 {
        if self.total == 0 || min > max {
            return 0.0;
        }
        let mut mass = 0.0;
        for (idx, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (blo, bhi) = self.bucket_bounds(idx);
            let overlap = (max.min(bhi) - min.max(blo)).max(0.0);
            if overlap > 0.0 {
                mass += count as f64 * overlap / (bhi - blo);
            } else if min <= blo && max >= bhi {
                mass += count as f64;
            }
        }
        (mass / self.total as f64).clamp(0.0, 1.0)
    }

    /// Merges another histogram with the same configuration into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket counts differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Clears all recorded observations.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
    }

    /// Rebuilds a histogram from previously captured parts (the inverse of
    /// [`lo`](Self::lo)/[`hi`](Self::hi)/[`buckets`](Self::buckets)), for
    /// deserialization.
    ///
    /// # Errors
    ///
    /// The same configuration errors as [`new`](Self::new), plus
    /// [`HistogramError::InvalidRange`] when `total` disagrees with the sum
    /// of the bucket counts.
    pub fn from_parts(
        lo: f64,
        hi: f64,
        buckets: Vec<u64>,
        total: u64,
    ) -> Result<Self, HistogramError> {
        let mut h = Histogram::new(lo, hi, buckets.len())?;
        if buckets.iter().sum::<u64>() != total {
            return Err(HistogramError::InvalidRange);
        }
        h.buckets = buckets;
        h.total = total;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(
            Histogram::new(1.0, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange
        );
        assert_eq!(
            Histogram::new(2.0, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange
        );
        assert_eq!(
            Histogram::new(f64::NAN, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange
        );
        assert_eq!(
            Histogram::new(0.0, 1.0, 0).unwrap_err(),
            HistogramError::NoBuckets
        );
        assert!(Histogram::new(0.0, 1.0, 1).is_ok());
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.fraction_in(0.0, 10.0), 0.0);
    }

    #[test]
    fn full_range_fraction_is_one() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for i in 0..10 {
            h.add(i as f64);
        }
        assert!((h.fraction_in(0.0, 10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_clamp_to_boundary_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(-5.0);
        h.add(50.0);
        assert_eq!(h.total(), 2);
        assert!(h.fraction_in(0.0, 2.0) > 0.0);
        assert!(h.fraction_in(8.0, 10.0) > 0.0);
    }

    #[test]
    fn partial_bucket_interpolates() {
        let mut h = Histogram::new(0.0, 10.0, 1).unwrap();
        for _ in 0..100 {
            h.add(5.0);
        }
        // Half of the single bucket's width ⇒ half the mass under the
        // within-bucket-uniform assumption.
        assert!((h.fraction_in(0.0, 5.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inverted_query_range_is_zero() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(5.0);
        assert_eq!(h.fraction_in(6.0, 4.0), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        a.add(1.0);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!((a.fraction_in(0.0, 2.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bucket counts differ")]
    fn merge_mismatched_panics() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let b = Histogram::new(0.0, 10.0, 4).unwrap();
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(5.0);
        h.clear();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_in(0.0, 10.0), 0.0);
    }
}
