//! Statistics substrate for the TTMQO reproduction: selectivity estimation
//! and routing-tree level populations.
//!
//! The base-station cost model (Eqs. 1–3 of the paper) needs two statistical
//! inputs: `sel(q, N_k)` — the fraction of nodes whose readings satisfy a
//! query's predicates — and the per-level node populations `N_k` of the data
//! routing tree. This crate provides both:
//!
//! * [`Histogram`] / [`DataDistribution`] / [`SelectivityEstimator`] for
//!   selectivity, with the paper's uniform fallback;
//! * [`LevelStats`] for the level populations, maximum depth and the average
//!   depth `d` used in the paper's worked example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod distribution;
mod histogram;
mod levels;

pub use distribution::{
    DataDistribution, EmpiricalDistribution, SelectivityEstimator, UniformDistribution,
};
pub use histogram::{Histogram, HistogramError};
pub use levels::LevelStats;
