//! Routing-tree level statistics — the `N_k` populations of Eq. (2).
//!
//! The cost model weighs each result message by the depth of its source node
//! in the data routing tree. [`LevelStats`] captures how many sensor nodes sit
//! at each level (level 0 is the base station and is excluded from the
//! message-producing population).

use std::fmt;

/// Per-level node populations of a routing tree rooted at the base station.
///
/// # Examples
///
/// ```
/// use ttmqo_stats::LevelStats;
///
/// // Base station (level 0) plus 3 nodes at level 1 and 2 at level 2.
/// let stats = LevelStats::from_levels([0u32, 1, 1, 1, 2, 2]);
/// assert_eq!(stats.sensor_count(), 5);
/// assert_eq!(stats.max_depth(), 2);
/// assert_eq!(stats.nodes_at(1), 3);
/// // Average depth d = (3·1 + 2·2) / 5.
/// assert!((stats.avg_depth() - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelStats {
    /// `counts[k]` is the number of nodes at level `k+1` (level 0 excluded).
    counts: Vec<u64>,
}

impl LevelStats {
    /// Builds statistics from every node's level (the base station's level-0
    /// entries are ignored).
    pub fn from_levels<I: IntoIterator<Item = u32>>(levels: I) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for level in levels {
            if level == 0 {
                continue;
            }
            let idx = (level - 1) as usize;
            if counts.len() <= idx {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        LevelStats { counts }
    }

    /// Builds statistics directly from per-level counts, `counts[0]` being
    /// level 1.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut counts: Vec<u64> = counts.into_iter().collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        LevelStats { counts }
    }

    /// Number of message-producing sensor nodes (levels ≥ 1).
    pub fn sensor_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Deepest level with any node (`max_depth` in Eq. 2); 0 when empty.
    pub fn max_depth(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Number of nodes at level `k` (1-based); 0 for out-of-range levels.
    pub fn nodes_at(&self, k: u32) -> u64 {
        if k == 0 {
            return 0;
        }
        self.counts.get((k - 1) as usize).copied().unwrap_or(0)
    }

    /// Iterates `(level, count)` pairs for levels 1..=max_depth.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u32 + 1, c))
    }

    /// Average node depth `d = Σ_k N_k · k / |N|` — the `d` of the paper's
    /// §3.1.3 worked example. Returns 0.0 for an empty network.
    pub fn avg_depth(&self) -> f64 {
        let n = self.sensor_count();
        if n == 0 {
            return 0.0;
        }
        let weighted: u64 = self.iter().map(|(k, c)| k as u64 * c).sum();
        weighted as f64 / n as f64
    }
}

impl fmt::Display for LevelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "levels[")?;
        for (i, (k, c)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "L{k}={c}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_levels_skips_base_station() {
        let s = LevelStats::from_levels([0, 1, 2, 2, 3]);
        assert_eq!(s.sensor_count(), 4);
        assert_eq!(s.nodes_at(0), 0);
        assert_eq!(s.nodes_at(1), 1);
        assert_eq!(s.nodes_at(2), 2);
        assert_eq!(s.nodes_at(3), 1);
        assert_eq!(s.nodes_at(4), 0);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn from_counts_trims_trailing_zeros() {
        let s = LevelStats::from_counts([3, 2, 0, 0]);
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.sensor_count(), 5);
    }

    #[test]
    fn empty_stats() {
        let s = LevelStats::from_levels(std::iter::empty());
        assert_eq!(s.sensor_count(), 0);
        assert_eq!(s.max_depth(), 0);
        assert_eq!(s.avg_depth(), 0.0);
    }

    #[test]
    fn avg_depth_weighted_mean() {
        let s = LevelStats::from_counts([4, 4]);
        assert!((s.avg_depth() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_levels() {
        let s = LevelStats::from_counts([3, 2]);
        assert_eq!(s.to_string(), "levels[L1=3, L2=2]");
    }
}
