//! Arena-backed per-node in-flight frame lists for the collision model.
//!
//! The interference-marking loop in `transmit` touches the `incoming` list
//! of every neighbour of the transmitter — 12 lists per frame on the paper's
//! grid geometry. As `Vec<Vec<_>>`, each touch chased a Vec header and then
//! a heap buffer scattered by the allocator: at 64×64 scale (4096 nodes)
//! those ~24 dependent cache misses per transmit dominated the whole engine
//! (profiled at ~60% of flood-bench wall time). This arena stores every
//! node's list in one flat allocation — node `i`'s entries at
//! `data[i*cap .. i*cap+len[i]]` — with entries packed to 16 bytes, so a
//! marking pass touches one dense 16 KiB `len` array plus contiguous blocks,
//! and the whole structure stays cache-resident at big-grid scale.
//!
//! Blocks are fixed-capacity; when any node's list would overflow, the arena
//! rebuilds with doubled capacity (deterministic, amortized over the run —
//! flood workloads stay at the initial capacity, deep two-tier backlogs
//! double a handful of times). Entries are kept sorted ascending by
//! `(start_us, dur_us, frame)` — exactly the `(start, end, frame)` order the
//! old per-transmit `sort_unstable` produced (equal starts order by equal
//! ends iff by equal durations) — so the CSMA carrier-sense scan reads a
//! block in place and draws the identical RNG sequence.

/// One in-flight frame audible at a node, packed to 16 bytes.
///
/// The duration is `u32` (a frame's airtime is milliseconds; `u32` µs allows
/// ~71 minutes) and the slab index is `u32` (the slab tracks *concurrently*
/// in-flight frames, bounded far below 4 billion by the id space).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IncomingFrame {
    /// Airtime start, µs.
    pub start_us: u64,
    /// Airtime duration, µs.
    pub dur_us: u32,
    /// Frame slab index.
    pub frame: u32,
}

impl IncomingFrame {
    /// Airtime end, µs (exclusive).
    #[inline]
    pub fn end_us(self) -> u64 {
        self.start_us + self.dur_us as u64
    }

    /// The sort key: ascending `(start, dur, frame)`, which orders identically
    /// to the old `(start, end, frame)` tuples (same starts ⇒ dur and end
    /// order agree).
    #[inline]
    fn key(self) -> (u64, u32, u32) {
        (self.start_us, self.dur_us, self.frame)
    }
}

/// Flat arena of per-node sorted in-flight frame lists. See the module docs
/// for the layout and why it exists.
#[derive(Debug, Clone)]
pub(crate) struct IncomingArena {
    /// `nodes * cap` entries; node `i` owns `data[i*cap .. (i+1)*cap]`.
    data: Vec<IncomingFrame>,
    /// Live entry count per node (`len[i] <= cap`).
    len: Vec<u32>,
    /// Current per-node block capacity (doubles on overflow).
    cap: usize,
}

/// Initial per-node block capacity: holds flood-style workloads (a handful
/// of concurrently audible frames) with at most one doubling, while keeping
/// the 64×64 arena at 256 KiB — cache-resident.
const INITIAL_CAP: usize = 4;

impl IncomingArena {
    /// An arena for `nodes` nodes, all lists empty.
    pub fn new(nodes: usize) -> Self {
        IncomingArena {
            data: vec![IncomingFrame::default(); nodes * INITIAL_CAP],
            len: vec![0; nodes],
            cap: INITIAL_CAP,
        }
    }

    /// Node `i`'s live entries, ascending by `(start, dur, frame)`.
    #[inline]
    pub fn node(&self, i: usize) -> &[IncomingFrame] {
        &self.data[i * self.cap..i * self.cap + self.len[i] as usize]
    }

    /// Drops node `i`'s entries whose airtime ended at or before `cutoff_us`,
    /// preserving order (the compaction the old `Vec::retain` did).
    ///
    /// Test-only reference half of [`IncomingArena::retain_mark_insert`],
    /// which the engine's hot path uses instead.
    #[cfg(test)]
    pub fn retain_active(&mut self, i: usize, cutoff_us: u64) {
        let base = i * self.cap;
        let n = self.len[i] as usize;
        let block = &mut self.data[base..base + n];
        // The common case drops nothing: scan read-only (no dirtied cache
        // lines) and start compacting only from the first expired entry.
        let Some(first) = block.iter().position(|e| e.end_us() <= cutoff_us) else {
            return;
        };
        let mut write = first;
        for read in first + 1..n {
            let e = block[read];
            if e.end_us() > cutoff_us {
                block[write] = e;
                write += 1;
            }
        }
        self.len[i] = write as u32;
    }

    /// Inserts an entry into node `i`'s list at its sorted position, growing
    /// the arena (doubled capacity, full rebuild) if the block is full.
    ///
    /// Test-only reference half of [`IncomingArena::retain_mark_insert`],
    /// which the engine's hot path uses instead.
    #[cfg(test)]
    pub fn insert(&mut self, i: usize, entry: IncomingFrame) {
        if self.len[i] as usize == self.cap {
            self.grow();
        }
        let base = i * self.cap;
        let n = self.len[i] as usize;
        let block = &self.data[base..base + n];
        let pos = block.partition_point(|e| e.key() < entry.key());
        // Shift the tail right by one inside the block; bounded by the block
        // occupancy, and entirely within one contiguous run.
        self.data.copy_within(base + pos..base + n, base + pos + 1);
        self.data[base + pos] = entry;
        self.len[i] = (n + 1) as u32;
    }

    /// Fused per-touch update for the interference-marking pass: drops node
    /// `i`'s entries whose airtime ended at or before `cutoff_us`, calls
    /// `on_overlap` with the slab index of each survivor whose airtime
    /// overlaps `new`'s, and inserts `new` at its sorted position — one
    /// left-to-right pass over the block where the unfused form (retain,
    /// then scan, then binary-search insert) walked it three times.
    ///
    /// Equivalent to
    /// `retain_active(i, cutoff_us)` + overlap scan + `insert(i, new)`:
    /// survivors are visited in the same order the post-retain scan saw
    /// them, so marking order is unchanged.
    pub fn retain_mark_insert(
        &mut self,
        i: usize,
        cutoff_us: u64,
        new: IncomingFrame,
        mut on_overlap: impl FnMut(u32),
    ) {
        let base = i * self.cap;
        let n = self.len[i] as usize;
        let new_end = new.end_us();
        let block = &mut self.data[base..base + n];
        let mut write = 0;
        // Insert position: survivors stay sorted, and every survivor with a
        // smaller key lands in the prefix, so the position is just a count.
        let mut pos = 0;
        for read in 0..n {
            let e = block[read];
            if e.end_us() <= cutoff_us {
                continue;
            }
            if e.start_us < new_end && new.start_us < e.end_us() {
                on_overlap(e.frame);
            }
            if e.key() < new.key() {
                pos = write + 1;
            }
            if write != read {
                block[write] = e;
            }
            write += 1;
        }
        self.len[i] = write as u32;
        if write == self.cap {
            self.grow();
        }
        let base = i * self.cap;
        self.data
            .copy_within(base + pos..base + write, base + pos + 1);
        self.data[base + pos] = new;
        self.len[i] = (write + 1) as u32;
    }

    /// Rebuilds with doubled per-node capacity, preserving every block.
    fn grow(&mut self) {
        let new_cap = self.cap * 2;
        let nodes = self.len.len();
        let mut data = vec![IncomingFrame::default(); nodes * new_cap];
        for i in 0..nodes {
            let n = self.len[i] as usize;
            data[i * new_cap..i * new_cap + n]
                .copy_from_slice(&self.data[i * self.cap..i * self.cap + n]);
        }
        self.data = data;
        self.cap = new_cap;
    }
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for IncomingFrame {
    fn write(&self, w: &mut SnapWriter) {
        let IncomingFrame {
            start_us,
            dur_us,
            frame,
        } = *self;
        w.put_u64(start_us);
        w.put_u32(dur_us);
        w.put_u32(frame);
    }
}

impl Restorable for IncomingFrame {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(IncomingFrame {
            start_us: r.u64()?,
            dur_us: r.u32()?,
            frame: r.u32()?,
        })
    }
}

impl Snapshot for IncomingArena {
    // The layout (including the current capacity) round-trips exactly: the
    // capacity is unobservable but serializing it is simpler and keeps the
    // restored arena byte-identical to the live one.
    fn write(&self, w: &mut SnapWriter) {
        let IncomingArena { data, len, cap } = self;
        data.write(w);
        len.write(w);
        w.put_usize(*cap);
    }
}

impl Restorable for IncomingArena {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let data: Vec<IncomingFrame> = Vec::read(r)?;
        let len: Vec<u32> = Vec::read(r)?;
        let cap = r.usize()?;
        if data.len() != len.len() * cap || len.iter().any(|&l| l as usize > cap) {
            return Err(SnapshotError::Corrupt(
                "incoming arena geometry mismatch".into(),
            ));
        }
        Ok(IncomingArena { data, len, cap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(start_us: u64, dur_us: u32, frame: u32) -> IncomingFrame {
        IncomingFrame {
            start_us,
            dur_us,
            frame,
        }
    }

    #[test]
    fn inserts_keep_each_node_sorted_and_isolated() {
        let mut a = IncomingArena::new(3);
        a.insert(1, f(300, 10, 7));
        a.insert(1, f(100, 10, 3));
        a.insert(1, f(200, 10, 5));
        a.insert(2, f(50, 10, 9));
        assert_eq!(a.node(0), &[]);
        assert_eq!(a.node(1), &[f(100, 10, 3), f(200, 10, 5), f(300, 10, 7)]);
        assert_eq!(a.node(2), &[f(50, 10, 9)]);
    }

    #[test]
    fn ties_order_by_duration_then_frame() {
        let mut a = IncomingArena::new(1);
        a.insert(0, f(100, 20, 2));
        a.insert(0, f(100, 10, 9));
        a.insert(0, f(100, 10, 4));
        // Same start: shorter duration first (same relative order as sorting
        // by end); same duration: lower frame index first.
        assert_eq!(a.node(0), &[f(100, 10, 4), f(100, 10, 9), f(100, 20, 2)]);
    }

    #[test]
    fn retain_drops_expired_entries_in_place() {
        let mut a = IncomingArena::new(2);
        a.insert(0, f(0, 100, 1)); // ends at 100
        a.insert(0, f(50, 100, 2)); // ends at 150
        a.insert(0, f(120, 100, 3)); // ends at 220
        a.retain_active(0, 100); // cutoff: end must be > 100
        assert_eq!(a.node(0), &[f(50, 100, 2), f(120, 100, 3)]);
        a.retain_active(0, 500);
        assert_eq!(a.node(0), &[]);
    }

    #[test]
    fn overflow_grows_and_preserves_every_block() {
        let mut a = IncomingArena::new(4);
        // Fill node 2 past several doublings, with node 1 holding data that
        // must survive the rebuilds untouched.
        a.insert(1, f(5, 1, 0));
        for k in 0..100u32 {
            a.insert(2, f((100 - k as u64) * 10, 1, k));
        }
        assert_eq!(a.node(1), &[f(5, 1, 0)]);
        assert_eq!(a.node(2).len(), 100);
        assert!(a.node(2).windows(2).all(|w| w[0].key() < w[1].key()));
        assert_eq!(a.node(2)[0], f(10, 1, 99));
    }

    #[test]
    fn fused_pass_matches_retain_then_scan_then_insert() {
        // Deterministic pseudo-random workload: replay the same touch stream
        // through the fused pass and through the unfused reference
        // (retain_active + overlap scan + insert) and demand identical
        // blocks and identical overlap reports at every step.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let nodes = 5;
        let mut fused = IncomingArena::new(nodes);
        let mut reference = IncomingArena::new(nodes);
        let mut clock = 0u64;
        for frame in 0..400u32 {
            clock += rand() % 40;
            let node = (rand() % nodes as u64) as usize;
            let start_us = clock + rand() % 60;
            let dur_us = 1 + (rand() % 80) as u32;
            let entry = IncomingFrame {
                start_us,
                dur_us,
                frame,
            };
            let mut ref_overlaps = Vec::new();
            reference.retain_active(node, start_us);
            for &other in reference.node(node) {
                if other.start_us < entry.end_us() && start_us < other.end_us() {
                    ref_overlaps.push(other.frame);
                }
            }
            reference.insert(node, entry);
            let mut fused_overlaps = Vec::new();
            fused.retain_mark_insert(node, start_us, entry, |f| fused_overlaps.push(f));
            assert_eq!(fused_overlaps, ref_overlaps, "overlaps at frame {frame}");
            for i in 0..nodes {
                assert_eq!(
                    fused.node(i),
                    reference.node(i),
                    "block {i} at frame {frame}"
                );
            }
        }
    }

    #[test]
    fn fused_pass_grows_when_compaction_cannot_free_a_slot() {
        let mut a = IncomingArena::new(2);
        // Fill node 0 with entries that never expire, then keep inserting.
        for k in 0..3 * INITIAL_CAP as u32 {
            let mut overlaps = 0;
            a.retain_mark_insert(
                0,
                0,
                IncomingFrame {
                    start_us: 1000 + k as u64,
                    dur_us: 1_000_000,
                    frame: k,
                },
                |_| overlaps += 1,
            );
            assert_eq!(overlaps as u32, k, "all prior entries overlap");
        }
        assert_eq!(a.node(0).len(), 3 * INITIAL_CAP);
        assert!(a.node(0).windows(2).all(|w| w[0].key() < w[1].key()));
    }

    #[test]
    fn end_us_is_start_plus_duration() {
        assert_eq!(f(1_000, 250, 0).end_us(), 1_250);
    }
}
