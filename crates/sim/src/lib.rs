//! Discrete-event wireless sensor network simulator for the TTMQO
//! reproduction.
//!
//! The paper evaluates on TinyOS motes under the packet-level TOSSIM
//! emulator; this crate is the substitute substrate: a deterministic
//! discrete-event simulator whose radio model charges exactly the cost the
//! paper's model is built on (`C_start + C_trans · len` per transmission),
//! models the broadcast nature of the channel, optional packet-level
//! collisions and loss with bounded unicast retransmission, sleep mode, and
//! per-kind message accounting — everything the paper's *average transmission
//! time* metric needs.
//!
//! Applications (the TinyDB baseline and the TTMQO in-network tier) implement
//! [`NodeApp`] and are driven by [`Simulator`].
//!
//! # Example: a two-node ping
//!
//! ```
//! use ttmqo_sim::{
//!     Ctx, Destination, MsgKind, NodeApp, NodeId, Position, RadioParams, SimConfig,
//!     SimTime, Simulator, Topology, ConstantField,
//! };
//!
//! #[derive(Debug, Default)]
//! struct Ping { got: bool }
//!
//! impl NodeApp for Ping {
//!     type Payload = &'static str;
//!     type Command = ();
//!     type Output = String;
//!
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Payload, Self::Output>) {
//!         if ctx.node() == NodeId(1) {
//!             ctx.send(Destination::Unicast(NodeId(0)), MsgKind::Result, 4, "ping");
//!         }
//!     }
//!     fn on_timer(&mut self, _: &mut Ctx<'_, Self::Payload, Self::Output>, _: u64) {}
//!     fn on_message(
//!         &mut self,
//!         ctx: &mut Ctx<'_, Self::Payload, Self::Output>,
//!         from: NodeId,
//!         _kind: MsgKind,
//!         payload: &Self::Payload,
//!     ) {
//!         self.got = true;
//!         ctx.emit(format!("{payload} from {from}"));
//!     }
//!     fn on_command(&mut self, _: &mut Ctx<'_, Self::Payload, Self::Output>, _: ()) {}
//! }
//!
//! let topo = Topology::from_positions(
//!     vec![Position { x: 0.0, y: 0.0 }, Position { x: 20.0, y: 0.0 }],
//!     50.0,
//! )?;
//! let mut sim = Simulator::new(
//!     topo,
//!     RadioParams::lossless(),
//!     SimConfig { maintenance_interval_ms: None, ..SimConfig::default() },
//!     Box::new(ConstantField),
//!     |_, _| Ping::default(),
//! );
//! sim.run_until(SimTime::from_ms(1000));
//! assert_eq!(sim.outputs().len(), 1);
//! assert!(sim.metrics().total_tx_busy_ms() > 0.0);
//! # Ok::<(), ttmqo_sim::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod calendar;
mod energy;
mod engine;
mod faults;
mod field;
mod incoming;
mod metrics;
mod profile;
mod radio;
mod snapshot;
mod time;
mod timeseries;
mod topology;
mod trace;

pub use audit::{AuditCheck, AuditReport, AuditViolation};
pub use calendar::CalendarQueue;
pub use energy::EnergyProfile;
pub use engine::{Ctx, EngineStats, NodeApp, OutputRecord, SimConfig, Simulator};
pub use faults::{
    CrashEvent, FaultPlan, FaultSchedule, LinkDegradation, RandomCrashes, RegionLossOverride,
};
pub use field::{BoundCorrelatedField, ConstantField, CorrelatedField, SensorField, UniformField};
pub use metrics::{CompletenessReport, Metrics, MetricsSnapshot, QueryCompleteness};
pub use profile::{
    sample_event, EnginePhase, PhaseProfile, ProfileHandle, ProfilePhase, ProfileReport,
    ProfileScratch, SAMPLE_INTERVAL,
};
pub use radio::{Destination, MsgKind, RadioParams};
pub use snapshot::{
    Restorable, SnapReader, SnapWriter, Snapshot, SnapshotBuilder, SnapshotDocument, SnapshotError,
    SECTION_RUNNER, SECTION_SIMULATOR, SNAPSHOT_MAGIC,
};
pub use time::SimTime;
pub use timeseries::{
    gini, max_mean_ratio, NodeTimeseries, TimeseriesConfig, WindowRecorder, WindowStats,
};
pub use topology::{NodeId, Position, Topology, TopologyError, GRID_SPACING_FT, RADIO_RANGE_FT};
pub use trace::diff::{trace_diff, Divergence, DivergentRecord, KindDelta, TraceDiff};
pub use trace::{
    chrome_trace, chrome_trace_with_profile, epoch_rollups, summarize_trace, trace_header,
    EpochRollup, JsonLinesSink, ProvenanceId, RingSink, TraceDest, TraceEvent, TraceHandle,
    TraceRecord, TraceSchemaError, TraceSink, TraceSummary, SCHEMA_VERSION,
};
