//! Deterministic per-phase profiler.
//!
//! Attributes wall-clock time and event counts to named engine and runner
//! phases without perturbing the simulation: profiling code only reads the
//! monotonic clock and bumps counters — it never draws from the simulation's
//! RNG and never branches on anything the simulation can observe, so a run
//! is bit-identical whether profiling is enabled or not (the same contract
//! [`crate::TraceHandle`] honours).
//!
//! The moving parts:
//!
//! - [`EnginePhase`] — the five event-dispatch phases the engine has always
//!   counted (formerly a magic-index `[u64; 5]`). Adding a phase without
//!   accounting for it everywhere is now a compile error.
//! - [`ProfilePhase`] — the full attribution key: the engine phases plus the
//!   engine's CSMA-sense and interference-marking sub-spans and the
//!   runner-side phases (topology build, snapshot save/restore, admission
//!   scoring, re-optimization, answer mapping).
//! - [`ProfileHandle`] — cloneable, off by default, shared between the
//!   runner and the engine the way [`crate::TraceHandle`] is.
//! - [`ProfileScratch`] — the engine's lock-free accumulator: an increment
//!   and a branch per event (plus a sampled timestamp pair, see below),
//!   flushed into the shared collector once per `run_until` call.
//! - [`ProfileReport`] — the per-phase wall µs / event count / ns-per-event
//!   summary, with JSON and Chrome trace-event exports.
//!
//! # Overhead budget
//!
//! The profiler's contract is <2% throughput cost at millions of events per
//! second, which leaves ~20 ns per event. `Instant::now` costs ~35 ns on a
//! typical Linux VM — even one read per event blows the budget — so the hot
//! path (a) reads raw timestamps instead (`stamp`: one `rdtsc` on x86-64,
//! an `Instant` delta elsewhere), converted to nanoseconds only once at
//! report time by calibrating against an `Instant` pair spanning the whole
//! profiled interval, and (b) *samples*: every event and sub-span occurrence
//! is counted (counts in a [`ProfileReport`] are exact), but only every
//! [`SAMPLE_INTERVAL`]-th occurrence of each is individually timed, and the
//! report extrapolates each phase's wall time from its measured fraction
//! (`wall = measured · events / sampled`). Sampling is counter-based and
//! deterministic; nothing the simulation observes depends on it, and the
//! unsampled path is an increment and a branch.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::SCHEMA_VERSION;

/// One in how many occurrences of a phase (event dispatch or nested
/// sub-span) gets its wall time measured. Counts are always exact; wall
/// time is extrapolated from the measured sample.
pub const SAMPLE_INTERVAL: u64 = 32;

/// A raw monotonic timestamp in unspecified units ("ticks"): the TSC on
/// x86-64 (~5 ns per read vs ~35 ns for `Instant::now`), nanoseconds from a
/// process-global anchor elsewhere. Tick duration is recovered at report
/// time by calibration against an `Instant` pair, so callers never convert.
#[inline]
fn stamp() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC has no memory or register preconditions; it only
        // reads the time-stamp counter.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// The engine's event-dispatch phases, in the order the engine's snapshot
/// wire has always stored their counters. Every processed event belongs to
/// exactly one of these; the match in `Simulator::process_event` is
/// exhaustive, so a new event kind cannot ship without naming its phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePhase {
    /// Application timer callbacks (`on_timer`).
    Timer,
    /// Frame delivery fan-out to receivers (`on_message` and loss/collision
    /// resolution).
    Deliver,
    /// External commands injected into a node (`on_command`).
    Command,
    /// Periodic maintenance beacons.
    Maintenance,
    /// Fault-plan crash and recovery events.
    Fault,
}

impl EnginePhase {
    /// Number of engine phases (the length of the engine's per-phase
    /// counter array — and of its snapshot wire encoding).
    pub const COUNT: usize = 5;

    /// All phases, in wire order.
    pub const ALL: [EnginePhase; EnginePhase::COUNT] = [
        EnginePhase::Timer,
        EnginePhase::Deliver,
        EnginePhase::Command,
        EnginePhase::Maintenance,
        EnginePhase::Fault,
    ];

    /// Index into the engine's per-phase counter array (== position in
    /// [`EnginePhase::ALL`]). Exhaustive: a new phase must pick a slot.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            EnginePhase::Timer => 0,
            EnginePhase::Deliver => 1,
            EnginePhase::Command => 2,
            EnginePhase::Maintenance => 3,
            EnginePhase::Fault => 4,
        }
    }

    /// Stable lowercase name (used in reports and JSON).
    pub const fn name(self) -> &'static str {
        match self {
            EnginePhase::Timer => "timer",
            EnginePhase::Deliver => "deliver",
            EnginePhase::Command => "command",
            EnginePhase::Maintenance => "maintenance",
            EnginePhase::Fault => "fault",
        }
    }
}

/// Every phase the profiler attributes time to: the five [`EnginePhase`]s
/// (top-level, non-overlapping — their wall times sum to at most the run's
/// total wall time), two engine sub-spans that *nest inside* event phases
/// (CSMA sensing and interference marking happen within a transmitting
/// event's slice, so they must not be added to the event-phase total), and
/// the runner-side phases outside the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilePhase {
    /// [`EnginePhase::Timer`].
    Timer,
    /// [`EnginePhase::Deliver`].
    Deliver,
    /// [`EnginePhase::Command`].
    Command,
    /// [`EnginePhase::Maintenance`].
    Maintenance,
    /// [`EnginePhase::Fault`].
    Fault,
    /// CSMA carrier sensing inside `transmit` (nests in an event phase).
    CsmaSense,
    /// Interference marking across receivers inside `transmit` (nests in an
    /// event phase).
    InterferenceMark,
    /// Grid/topology construction before the run starts.
    TopologyBuild,
    /// Serializing a checkpoint.
    SnapshotSave,
    /// Restoring a checkpoint.
    SnapshotRestore,
    /// Base-station optimizer admission scoring (`insert`).
    AdmissionScoring,
    /// Base-station optimizer re-optimization sweeps.
    Reoptimize,
    /// Mapping synthetic answers back onto user queries.
    AnswerMapping,
}

impl ProfilePhase {
    /// Number of profiled phases.
    pub const COUNT: usize = 13;

    /// All phases, in report order: engine event phases first (wire order),
    /// then engine sub-spans, then runner phases.
    pub const ALL: [ProfilePhase; ProfilePhase::COUNT] = [
        ProfilePhase::Timer,
        ProfilePhase::Deliver,
        ProfilePhase::Command,
        ProfilePhase::Maintenance,
        ProfilePhase::Fault,
        ProfilePhase::CsmaSense,
        ProfilePhase::InterferenceMark,
        ProfilePhase::TopologyBuild,
        ProfilePhase::SnapshotSave,
        ProfilePhase::SnapshotRestore,
        ProfilePhase::AdmissionScoring,
        ProfilePhase::Reoptimize,
        ProfilePhase::AnswerMapping,
    ];

    /// Index into per-phase collector arrays (== position in
    /// [`ProfilePhase::ALL`]).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ProfilePhase::Timer => 0,
            ProfilePhase::Deliver => 1,
            ProfilePhase::Command => 2,
            ProfilePhase::Maintenance => 3,
            ProfilePhase::Fault => 4,
            ProfilePhase::CsmaSense => 5,
            ProfilePhase::InterferenceMark => 6,
            ProfilePhase::TopologyBuild => 7,
            ProfilePhase::SnapshotSave => 8,
            ProfilePhase::SnapshotRestore => 9,
            ProfilePhase::AdmissionScoring => 10,
            ProfilePhase::Reoptimize => 11,
            ProfilePhase::AnswerMapping => 12,
        }
    }

    /// Stable kebab-case name (used in reports, JSON, and Chrome spans).
    pub const fn name(self) -> &'static str {
        match self {
            ProfilePhase::Timer => "timer",
            ProfilePhase::Deliver => "deliver",
            ProfilePhase::Command => "command",
            ProfilePhase::Maintenance => "maintenance",
            ProfilePhase::Fault => "fault",
            ProfilePhase::CsmaSense => "csma-sense",
            ProfilePhase::InterferenceMark => "interference-mark",
            ProfilePhase::TopologyBuild => "topology-build",
            ProfilePhase::SnapshotSave => "snapshot-save",
            ProfilePhase::SnapshotRestore => "snapshot-restore",
            ProfilePhase::AdmissionScoring => "admission-scoring",
            ProfilePhase::Reoptimize => "reoptimize",
            ProfilePhase::AnswerMapping => "answer-mapping",
        }
    }

    /// Whether this phase is one of the five top-level engine event phases
    /// (the ones whose wall times are non-overlapping).
    pub const fn is_engine_event_phase(self) -> bool {
        matches!(
            self,
            ProfilePhase::Timer
                | ProfilePhase::Deliver
                | ProfilePhase::Command
                | ProfilePhase::Maintenance
                | ProfilePhase::Fault
        )
    }
}

impl From<EnginePhase> for ProfilePhase {
    fn from(p: EnginePhase) -> ProfilePhase {
        match p {
            EnginePhase::Timer => ProfilePhase::Timer,
            EnginePhase::Deliver => ProfilePhase::Deliver,
            EnginePhase::Command => ProfilePhase::Command,
            EnginePhase::Maintenance => ProfilePhase::Maintenance,
            EnginePhase::Fault => ProfilePhase::Fault,
        }
    }
}

/// Shared accumulator behind an enabled [`ProfileHandle`]: per-phase raw
/// tick totals, occurrence counts, and how many occurrences were timed,
/// plus the `Instant`/`stamp` pair taken at creation that report time
/// uses to calibrate ticks to nanoseconds.
#[derive(Debug, Clone)]
struct ProfileCollector {
    calib_instant: Instant,
    calib_stamp: u64,
    ticks: [u64; ProfilePhase::COUNT],
    events: [u64; ProfilePhase::COUNT],
    sampled: [u64; ProfilePhase::COUNT],
}

impl ProfileCollector {
    fn new() -> Self {
        ProfileCollector {
            calib_instant: Instant::now(),
            calib_stamp: stamp(),
            ticks: [0; ProfilePhase::COUNT],
            events: [0; ProfilePhase::COUNT],
            sampled: [0; ProfilePhase::COUNT],
        }
    }
}

/// Advances an event-sampling cursor and, for every [`SAMPLE_INTERVAL`]-th
/// event, returns a start stamp to pass to [`ProfileScratch::event_end`].
/// Taking the cursor by reference lets the engine keep it in a loop-local
/// (register-allocated) variable — see [`ProfileScratch::take_seen`].
#[inline]
pub fn sample_event(seen: &mut u64) -> Option<u64> {
    *seen = seen.wrapping_add(1);
    (*seen % SAMPLE_INTERVAL == 1).then(stamp)
}

/// The engine's lock-free per-run accumulator. The event loop brackets
/// every [`SAMPLE_INTERVAL`]-th event with a `stamp` pair
/// ([`ProfileScratch::event_begin`]/[`ProfileScratch::event_end`]); the
/// unsampled majority costs one counter increment and a branch, and their
/// exact per-phase counts are credited in bulk from the engine's own
/// counters via [`ProfileScratch::credit`]. The CSMA/interference
/// sub-spans are sampled the same way on their own per-phase counters.
/// The scratch is flushed into the shared collector once per `run_until`
/// call, so the hot loop never touches the handle's mutex.
#[derive(Debug)]
pub struct ProfileScratch {
    seen: u64,
    ticks: [u64; ProfilePhase::COUNT],
    events: [u64; ProfilePhase::COUNT],
    sampled: [u64; ProfilePhase::COUNT],
}

impl ProfileScratch {
    fn new() -> Self {
        ProfileScratch {
            seen: 0,
            ticks: [0; ProfilePhase::COUNT],
            events: [0; ProfilePhase::COUNT],
            sampled: [0; ProfilePhase::COUNT],
        }
    }

    /// Marks the start of one dispatched event; for every
    /// [`SAMPLE_INTERVAL`]-th event returns a start stamp to pass to
    /// [`ProfileScratch::event_end`]. The unsampled path is an increment
    /// and a branch — no timestamp read.
    #[inline]
    pub fn event_begin(&mut self) -> Option<u64> {
        sample_event(&mut self.seen)
    }

    /// Detaches the event-sampling cursor so a hot loop can advance it in a
    /// register with [`sample_event`] instead of a memory read-modify-write
    /// through the scratch box; pair with [`ProfileScratch::store_seen`]
    /// before the scratch is flushed.
    #[inline]
    pub fn take_seen(&self) -> u64 {
        self.seen
    }

    /// Writes back a cursor detached with [`ProfileScratch::take_seen`].
    #[inline]
    pub fn store_seen(&mut self, seen: u64) {
        self.seen = seen;
    }

    /// Closes a sampled event started by [`ProfileScratch::event_begin`],
    /// now that its phase is known. Only called for sampled events (when
    /// `event_begin` returned a stamp), so unsampled events cost the engine
    /// nothing here; their counts arrive in bulk via
    /// [`ProfileScratch::credit`] from the engine's always-on per-phase
    /// counters.
    #[inline]
    pub fn event_end(&mut self, phase: ProfilePhase, started: u64) {
        let i = phase.index();
        self.ticks[i] += stamp().saturating_sub(started);
        self.sampled[i] += 1;
    }

    /// Credits `count` occurrences to `phase` in one add. The engine calls
    /// this once per `run_until` with the delta of its own per-phase event
    /// counters, so event counts stay exact without any per-event profiler
    /// bookkeeping in the hot loop.
    #[inline]
    pub fn credit(&mut self, phase: ProfilePhase, count: u64) {
        self.events[phase.index()] += count;
    }

    /// Counts one occurrence of a nested sub-span (CSMA sensing,
    /// interference marking) and, for every [`SAMPLE_INTERVAL`]-th
    /// occurrence, returns a start stamp to pass to
    /// [`ProfileScratch::span_end`]. The unsampled path is an increment and
    /// a branch — no timestamp read.
    #[inline]
    pub fn span_begin(&mut self, phase: ProfilePhase) -> Option<u64> {
        let i = phase.index();
        self.events[i] += 1;
        (self.events[i] % SAMPLE_INTERVAL == 1).then(stamp)
    }

    /// Closes a sampled sub-span started by [`ProfileScratch::span_begin`].
    /// Sub-spans nest inside the enclosing event's slice: when that event is
    /// itself sampled, its measured duration still includes this span.
    #[inline]
    pub fn span_end(&mut self, phase: ProfilePhase, started: u64) {
        let i = phase.index();
        self.ticks[i] += stamp().saturating_sub(started);
        self.sampled[i] += 1;
    }
}

/// Cloneable handle the runner and engine record profiling data through.
///
/// The default handle is disabled: every instrumentation site reduces to an
/// `Option::is_some` branch, and — enabled or disabled — profiling never
/// draws from the simulation's RNG and never changes behaviour, so runs
/// stay bit-identical.
#[derive(Clone, Default)]
pub struct ProfileHandle(Option<Arc<Mutex<ProfileCollector>>>);

impl ProfileHandle {
    /// The no-op handle (same as `ProfileHandle::default()`).
    pub fn disabled() -> Self {
        ProfileHandle(None)
    }

    /// A fresh enabled handle. Clone it into every component that should
    /// contribute (engine, runner); [`ProfileHandle::report`] reads the
    /// merged totals back.
    pub fn enabled() -> Self {
        ProfileHandle(Some(Arc::new(Mutex::new(ProfileCollector::new()))))
    }

    /// Whether a collector is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A new scratch accumulator if enabled (the engine holds one and
    /// flushes it back with [`ProfileHandle::absorb`]).
    pub fn scratch(&self) -> Option<Box<ProfileScratch>> {
        self.0.as_ref().map(|_| Box::new(ProfileScratch::new()))
    }

    /// Merges a scratch accumulator's totals into the collector and zeroes
    /// the scratch. One lock per call — call once per `run_until`, not per
    /// event.
    pub fn absorb(&self, scratch: &mut ProfileScratch) {
        if let Some(shared) = &self.0 {
            let mut c = shared.lock().expect("profile collector poisoned");
            for i in 0..ProfilePhase::COUNT {
                c.ticks[i] += scratch.ticks[i];
                c.events[i] += scratch.events[i];
                c.sampled[i] += scratch.sampled[i];
                scratch.ticks[i] = 0;
                scratch.events[i] = 0;
                scratch.sampled[i] = 0;
            }
        }
    }

    /// Starts a coarse-grained span (runner phases: topology build,
    /// snapshot save/restore, optimizer work). Returns `None` when
    /// disabled, so the disabled path never reads a timestamp.
    #[inline]
    pub fn start(&self) -> Option<u64> {
        self.0.as_ref().map(|_| stamp())
    }

    /// Ends a span started with [`ProfileHandle::start`], crediting `phase`
    /// directly in the shared collector (locks; fine for runner-frequency
    /// phases, wrong for the per-event hot path — that is what
    /// [`ProfileScratch`] is for).
    pub fn finish(&self, phase: ProfilePhase, started: Option<u64>) {
        if let (Some(shared), Some(t0)) = (&self.0, started) {
            let ticks = stamp().saturating_sub(t0);
            let mut c = shared.lock().expect("profile collector poisoned");
            let i = phase.index();
            c.ticks[i] += ticks;
            c.events[i] += 1;
            c.sampled[i] += 1;
        }
    }

    /// Snapshot of the totals so far, or `None` when disabled.
    ///
    /// Converts raw ticks to nanoseconds by calibrating against the
    /// `Instant` pair spanning the collector's lifetime, and extrapolates
    /// each sampled phase's wall time from its measured fraction
    /// (`wall = measured · events / sampled`); runner phases are fully
    /// timed (`events == sampled`), so they convert exactly.
    pub fn report(&self) -> Option<ProfileReport> {
        let shared = self.0.as_ref()?;
        let c = shared.lock().expect("profile collector poisoned");
        let elapsed_ns = c.calib_instant.elapsed().as_nanos() as f64;
        let elapsed_ticks = stamp().saturating_sub(c.calib_stamp).max(1) as f64;
        let ns_per_tick = elapsed_ns / elapsed_ticks;
        Some(ProfileReport {
            phases: ProfilePhase::ALL
                .iter()
                .map(|&p| {
                    let i = p.index();
                    let wall_ns = if c.sampled[i] == 0 {
                        0
                    } else {
                        let measured_ns = c.ticks[i] as f64 * ns_per_tick;
                        (measured_ns * c.events[i] as f64 / c.sampled[i] as f64).round() as u64
                    };
                    PhaseProfile {
                        phase: p,
                        wall_ns,
                        events: c.events[i],
                    }
                })
                .collect(),
        })
    }
}

impl fmt::Debug for ProfileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProfileHandle")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

/// One phase's totals in a [`ProfileReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Which phase.
    pub phase: ProfilePhase,
    /// Total wall time attributed, nanoseconds.
    pub wall_ns: u64,
    /// Number of spans/events attributed.
    pub events: u64,
}

impl PhaseProfile {
    /// Wall time in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.wall_ns / 1_000
    }

    /// Mean nanoseconds per event (0 when no events).
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.events as f64
        }
    }
}

/// Per-phase profiling summary: wall µs, event counts, ns/event.
///
/// Every number here is *wall-clock derived and therefore machine- and
/// run-dependent* — reports are for attribution, never for the determinism
/// gate (which is why `RunReport`'s golden comparisons null the profile
/// out first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// One entry per [`ProfilePhase`], in [`ProfilePhase::ALL`] order.
    pub phases: Vec<PhaseProfile>,
}

impl ProfileReport {
    /// The entry for `phase` (reports built by [`ProfileHandle::report`]
    /// always carry every phase).
    pub fn get(&self, phase: ProfilePhase) -> PhaseProfile {
        self.phases
            .iter()
            .copied()
            .find(|p| p.phase == phase)
            .unwrap_or(PhaseProfile {
                phase,
                wall_ns: 0,
                events: 0,
            })
    }

    /// Sum of the five top-level engine event phases' wall ns (these do not
    /// overlap, so the sum is the event loop's attributed wall time; the
    /// CSMA/interference sub-spans nest inside it and are excluded).
    pub fn engine_event_wall_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.phase.is_engine_event_phase())
            .map(|p| p.wall_ns)
            .sum()
    }

    /// One JSON object: schema version, then per-phase
    /// `{name, wall_us, events, ns_per_event}` entries.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"schema_version\":{SCHEMA_VERSION},\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_us\":{},\"events\":{},\"ns_per_event\":{:.1}}}",
                p.phase.name(),
                p.wall_us(),
                p.events,
                p.ns_per_event()
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a report back from its [`ProfileReport::to_json`] form (the
    /// shape campaign `profile-*.json` artifacts use), so offline tools
    /// can merge phase spans into a Chrome trace without re-running.
    /// Returns `None` when the text is not a profile report. Sub-µs wall
    /// times are quantized by the round-trip; counts are exact.
    pub fn from_json(text: &str) -> Option<ProfileReport> {
        let phases_at = text.find("\"phases\":[")?;
        let mut phases = Vec::new();
        for chunk in text[phases_at..].split("{\"name\":").skip(1) {
            let name = crate::trace::json_str_field(&format!("{{\"name\":{chunk}"), "name")?;
            let phase = ProfilePhase::ALL.into_iter().find(|p| p.name() == name)?;
            phases.push(PhaseProfile {
                phase,
                wall_ns: crate::trace::json_u64_field(chunk, "wall_us")? * 1_000,
                events: crate::trace::json_u64_field(chunk, "events")?,
            });
        }
        (!phases.is_empty()).then_some(ProfileReport { phases })
    }

    /// Chrome trace-event objects rendering the per-phase totals as a
    /// flamegraph-style row of back-to-back complete (`X`) slices on a
    /// dedicated `pid:1` "profiler" track. Timestamps are cumulative wall
    /// µs (a different timebase from the simulation-time events on
    /// `pid:0`); viewers show both tracks side by side.
    pub fn chrome_spans(&self) -> Vec<String> {
        let mut spans = Vec::new();
        let mut ts = 0u64;
        for p in &self.phases {
            if p.wall_ns == 0 && p.events == 0 {
                continue;
            }
            let dur = p.wall_us().max(1);
            let tid = if p.phase.is_engine_event_phase() {
                0
            } else {
                1
            };
            spans.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"events\":{}}}}}",
                p.phase.name(),
                p.events
            ));
            ts += dur;
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, p) in EnginePhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, p) in ProfilePhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        // Engine phases occupy the same slots in both keys.
        for p in EnginePhase::ALL {
            assert_eq!(ProfilePhase::from(p).index(), p.index());
            assert_eq!(ProfilePhase::from(p).name(), p.name());
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ProfileHandle::disabled();
        assert!(!h.is_enabled());
        assert!(h.scratch().is_none());
        assert!(h.start().is_none());
        h.finish(ProfilePhase::TopologyBuild, None);
        assert!(h.report().is_none());
    }

    #[test]
    fn scratch_absorb_accumulates_and_resets() {
        let h = ProfileHandle::enabled();
        let mut s = h.scratch().expect("enabled handle yields scratch");
        let t0 = s.event_begin();
        assert!(t0.is_some(), "first event is sampled");
        s.event_end(ProfilePhase::Deliver, t0.unwrap());
        let t1 = s.event_begin();
        assert!(t1.is_none(), "events 2..SAMPLE_INTERVAL skip the stamps");
        // Counts arrive in bulk from the engine's own phase counters.
        s.credit(ProfilePhase::Deliver, 2);
        s.credit(ProfilePhase::Timer, 1);
        let t0 = s
            .span_begin(ProfilePhase::CsmaSense)
            .expect("first sub-span occurrence is sampled");
        s.span_end(ProfilePhase::CsmaSense, t0);
        // Occurrences 2..SAMPLE_INTERVAL are counted but not timed.
        assert!(s.span_begin(ProfilePhase::CsmaSense).is_none());
        h.absorb(&mut s);
        // Scratch zeroed: absorbing again adds nothing.
        h.absorb(&mut s);
        let r = h.report().unwrap();
        assert_eq!(r.get(ProfilePhase::Deliver).events, 2);
        assert_eq!(r.get(ProfilePhase::Timer).events, 1);
        assert_eq!(r.get(ProfilePhase::CsmaSense).events, 2);
        assert_eq!(r.get(ProfilePhase::Command).events, 0);
    }

    #[test]
    fn finish_records_runner_spans() {
        let h = ProfileHandle::enabled();
        let t0 = h.start();
        assert!(t0.is_some());
        h.finish(ProfilePhase::Reoptimize, t0);
        let r = h.report().unwrap();
        assert_eq!(r.get(ProfilePhase::Reoptimize).events, 1);
    }

    #[test]
    fn report_json_round_trips() {
        let report = ProfileReport {
            phases: vec![
                PhaseProfile {
                    phase: ProfilePhase::Deliver,
                    wall_ns: 12_000,
                    events: 7,
                },
                PhaseProfile {
                    phase: ProfilePhase::AdmissionScoring,
                    wall_ns: 3_000,
                    events: 2,
                },
            ],
        };
        let json = report.to_json();
        let parsed = ProfileReport::from_json(&json).expect("own JSON parses");
        // Whole-µs wall times survive the round trip exactly.
        assert_eq!(parsed.to_json(), json);
        assert!(ProfileReport::from_json("{\"not\":\"a profile\"}").is_none());
    }

    #[test]
    fn report_json_names_every_phase() {
        let h = ProfileHandle::enabled();
        let json = h.report().unwrap().to_json();
        assert!(json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION}")));
        for p in ProfilePhase::ALL {
            assert!(json.contains(p.name()), "missing {}", p.name());
        }
    }

    #[test]
    fn chrome_spans_skip_empty_phases_and_stack_timestamps() {
        let report = ProfileReport {
            phases: vec![
                PhaseProfile {
                    phase: ProfilePhase::Deliver,
                    wall_ns: 10_000,
                    events: 3,
                },
                PhaseProfile {
                    phase: ProfilePhase::Command,
                    wall_ns: 0,
                    events: 0,
                },
                PhaseProfile {
                    phase: ProfilePhase::InterferenceMark,
                    wall_ns: 4_000,
                    events: 1,
                },
            ],
        };
        let spans = report.chrome_spans();
        assert_eq!(spans.len(), 2, "empty command phase skipped");
        assert!(spans[0].contains("\"name\":\"deliver\""));
        assert!(spans[0].contains("\"ts\":0"));
        assert!(spans[1].contains("\"name\":\"interference-mark\""));
        assert!(spans[1].contains("\"ts\":10"));
        assert!(spans.iter().all(|s| s.contains("\"pid\":1")));
    }

    #[test]
    fn sampled_span_wall_time_is_extrapolated_by_count() {
        let h = ProfileHandle::enabled();
        let mut s = h.scratch().expect("enabled");
        // One timed occurrence with real elapsed time, then enough untimed
        // occurrences that extrapolation must scale the measurement up.
        let t0 = s
            .span_begin(ProfilePhase::InterferenceMark)
            .expect("sampled");
        let spin = Instant::now();
        while spin.elapsed().as_micros() < 200 {
            std::hint::black_box(0);
        }
        s.span_end(ProfilePhase::InterferenceMark, t0);
        for _ in 0..3 {
            assert!(s.span_begin(ProfilePhase::InterferenceMark).is_none());
        }
        h.absorb(&mut s);
        let r = h.report().unwrap();
        let p = r.get(ProfilePhase::InterferenceMark);
        assert_eq!(p.events, 4);
        // wall ≈ measured · 4/1: at least the measured ~200µs, and clearly
        // scaled beyond it.
        assert!(p.wall_ns > 400_000, "extrapolated wall {} ns", p.wall_ns);
    }

    #[test]
    fn ns_per_event_handles_zero() {
        let p = PhaseProfile {
            phase: ProfilePhase::Timer,
            wall_ns: 0,
            events: 0,
        };
        assert_eq!(p.ns_per_event(), 0.0);
    }
}
