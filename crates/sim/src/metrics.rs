//! Simulation metrics: the measurements the paper's figures are built from.
//!
//! The headline metric is *average transmission time* — "the average
//! percentage of transmission time spent on each node for all running queries
//! over the simulation time" (§4.1). All radio message kinds count toward it:
//! results, query propagation/abortion, maintenance and retransmissions.

use crate::energy::EnergyProfile;
use crate::radio::MsgKind;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Per-run accounting of radio and sensing activity.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-node time spent transmitting, ms (indexed by node id).
    tx_busy_ms: Vec<f64>,
    /// Per-node time spent receiving, ms.
    rx_busy_ms: Vec<f64>,
    /// Per-node time spent with the radio off, ms.
    sleep_ms: Vec<f64>,
    /// Number of transmissions by kind (retransmissions re-count their kind).
    tx_count: BTreeMap<MsgKind, u64>,
    /// Payload+header bytes transmitted by kind.
    tx_bytes: BTreeMap<MsgKind, u64>,
    /// Retransmissions caused by loss or collision.
    retransmissions: u64,
    /// Frames corrupted by collisions (counted per receiver).
    collisions: u64,
    /// Frames dropped by the random loss model (counted per receiver).
    losses: u64,
    /// Unicast frames abandoned after exhausting retries.
    gave_up: u64,
    /// Number of sensor samples taken.
    samples: u64,
    /// End of the measured window.
    horizon: SimTime,
}

impl Metrics {
    /// Fresh metrics for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Metrics {
            tx_busy_ms: vec![0.0; nodes],
            rx_busy_ms: vec![0.0; nodes],
            sleep_ms: vec![0.0; nodes],
            ..Default::default()
        }
    }

    pub(crate) fn record_tx(&mut self, node: usize, kind: MsgKind, bytes: usize, busy_ms: f64) {
        self.tx_busy_ms[node] += busy_ms;
        *self.tx_count.entry(kind).or_insert(0) += 1;
        *self.tx_bytes.entry(kind).or_insert(0) += bytes as u64;
    }

    pub(crate) fn record_rx(&mut self, node: usize, busy_ms: f64) {
        self.rx_busy_ms[node] += busy_ms;
    }

    /// Adjusts a node's accumulated sleep time (negative when an early wake
    /// cancels part of a planned nap).
    pub(crate) fn record_sleep(&mut self, node: usize, ms: f64) {
        self.sleep_ms[node] = (self.sleep_ms[node] + ms).max(0.0);
    }

    pub(crate) fn record_retransmission(&mut self) {
        self.retransmissions += 1;
    }

    pub(crate) fn record_collision(&mut self) {
        self.collisions += 1;
    }

    pub(crate) fn record_loss(&mut self) {
        self.losses += 1;
    }

    pub(crate) fn record_gave_up(&mut self) {
        self.gave_up += 1;
    }

    pub(crate) fn record_sample(&mut self) {
        self.samples += 1;
    }

    pub(crate) fn set_horizon(&mut self, t: SimTime) {
        self.horizon = self.horizon.max(t);
    }

    /// The paper's headline metric: mean over nodes of (time spent
    /// transmitting ÷ simulated time), as a percentage.
    ///
    /// Returns 0.0 before any time has elapsed.
    pub fn avg_transmission_time_pct(&self) -> f64 {
        let duration = self.horizon.as_ms() as f64;
        if duration <= 0.0 || self.tx_busy_ms.is_empty() {
            return 0.0;
        }
        let mean_busy: f64 = self.tx_busy_ms.iter().sum::<f64>() / self.tx_busy_ms.len() as f64;
        100.0 * mean_busy / duration
    }

    /// Total transmitting time across all nodes, ms.
    pub fn total_tx_busy_ms(&self) -> f64 {
        self.tx_busy_ms.iter().sum()
    }

    /// A node's transmitting time, ms.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_tx_busy_ms(&self, node: usize) -> f64 {
        self.tx_busy_ms[node]
    }

    /// Total receiving time across all nodes, ms.
    pub fn total_rx_busy_ms(&self) -> f64 {
        self.rx_busy_ms.iter().sum()
    }

    /// Number of transmissions of the given kind.
    pub fn tx_count(&self, kind: MsgKind) -> u64 {
        self.tx_count.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of transmissions of all kinds.
    pub fn tx_count_total(&self) -> u64 {
        self.tx_count.values().sum()
    }

    /// Bytes transmitted of the given kind (headers included).
    pub fn tx_bytes(&self, kind: MsgKind) -> u64 {
        self.tx_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Retransmissions caused by loss or collision.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Frames corrupted by collisions, per receiver.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Frames dropped by the random loss model, per receiver.
    pub fn losses(&self) -> u64 {
        self.losses
    }

    /// Unicast frames abandoned after exhausting retries.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Sensor samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total time spent asleep across all nodes, ms.
    pub fn total_sleep_ms(&self) -> f64 {
        self.sleep_ms.iter().sum()
    }

    /// A node's accumulated sleep time, ms.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_sleep_ms(&self, node: usize) -> f64 {
        self.sleep_ms[node]
    }

    /// Whole-network energy over the measured window, millijoules, under the
    /// given power profile. Sensing nodes' idle-listening time is whatever is
    /// left of the horizon after transmit, receive and sleep.
    pub fn total_energy_mj(&self, profile: &EnergyProfile) -> f64 {
        let horizon = self.horizon.as_ms() as f64;
        let per_node: f64 = (0..self.tx_busy_ms.len())
            .map(|n| {
                profile.node_energy_mj(
                    horizon,
                    self.tx_busy_ms[n],
                    self.rx_busy_ms[n],
                    self.sleep_ms[n],
                    0.0,
                )
            })
            .sum();
        per_node + profile.sample_uj * self.samples as f64 / 1000.0
    }

    /// End of the measured window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "avg transmission time: {:.4}% over {}",
            self.avg_transmission_time_pct(),
            self.horizon
        )?;
        for kind in MsgKind::ALL {
            let c = self.tx_count(kind);
            if c > 0 {
                writeln!(f, "  {kind}: {c} msgs, {} bytes", self.tx_bytes(kind))?;
            }
        }
        write!(
            f,
            "  retransmissions: {}, collisions: {}, losses: {}, samples: {}",
            self.retransmissions, self.collisions, self.losses, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_transmission_time_is_mean_node_duty_cycle() {
        let mut m = Metrics::new(2);
        m.record_tx(0, MsgKind::Result, 30, 100.0);
        m.record_tx(1, MsgKind::Result, 30, 300.0);
        m.set_horizon(SimTime::from_ms(1000));
        // node duty cycles 10% and 30% → mean 20%.
        assert!((m.avg_transmission_time_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_yields_zero() {
        let m = Metrics::new(4);
        assert_eq!(m.avg_transmission_time_pct(), 0.0);
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let mut m = Metrics::new(1);
        m.record_tx(0, MsgKind::Result, 10, 1.0);
        m.record_tx(0, MsgKind::Result, 20, 1.0);
        m.record_tx(0, MsgKind::Maintenance, 5, 1.0);
        assert_eq!(m.tx_count(MsgKind::Result), 2);
        assert_eq!(m.tx_bytes(MsgKind::Result), 30);
        assert_eq!(m.tx_count(MsgKind::Maintenance), 1);
        assert_eq!(m.tx_count(MsgKind::QueryAbort), 0);
        assert_eq!(m.tx_count_total(), 3);
    }

    #[test]
    fn event_counters() {
        let mut m = Metrics::new(1);
        m.record_retransmission();
        m.record_collision();
        m.record_collision();
        m.record_loss();
        m.record_gave_up();
        m.record_sample();
        assert_eq!(m.retransmissions(), 1);
        assert_eq!(m.collisions(), 2);
        assert_eq!(m.losses(), 1);
        assert_eq!(m.gave_up(), 1);
        assert_eq!(m.samples(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new(1);
        m.record_tx(0, MsgKind::Result, 10, 1.0);
        m.set_horizon(SimTime::from_ms(10));
        let s = m.to_string();
        assert!(s.contains("avg transmission time"));
        assert!(s.contains("result"));
    }
}
