//! Simulation metrics: the measurements the paper's figures are built from.
//!
//! The headline metric is *average transmission time* — "the average
//! percentage of transmission time spent on each node for all running queries
//! over the simulation time" (§4.1). All radio message kinds count toward it:
//! results, query propagation/abortion, maintenance and retransmissions.

use crate::energy::EnergyProfile;
use crate::radio::MsgKind;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use ttmqo_query::QueryId;

/// Largest sleep-accounting error attributable to f64 rounding of µs→ms
/// conversions; anything more negative than this is a logic bug.
const SLEEP_EPSILON_MS: f64 = 1e-6;

/// Per-run accounting of radio and sensing activity.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-node time spent transmitting, ms (indexed by node id).
    tx_busy_ms: Vec<f64>,
    /// Per-node time spent receiving, ms.
    rx_busy_ms: Vec<f64>,
    /// Per-node time spent with the radio off, ms.
    sleep_ms: Vec<f64>,
    /// Number of transmissions by kind (retransmissions re-count their kind).
    tx_count: BTreeMap<MsgKind, u64>,
    /// Payload+header bytes transmitted by kind.
    tx_bytes: BTreeMap<MsgKind, u64>,
    /// Retransmissions caused by loss or collision.
    retransmissions: u64,
    /// Frames corrupted by collisions (counted per receiver).
    collisions: u64,
    /// Frames dropped by the random loss model (counted per receiver).
    losses: u64,
    /// Unicast frames abandoned after exhausting retries.
    gave_up: u64,
    /// Results dropped at nodes that had data but no live route toward the
    /// base station (orphaned by upstream failures).
    orphaned_drops: u64,
    /// Which nodes ever orphan-dropped (indexed by node id).
    orphaned: Vec<bool>,
    /// Number of sensor samples taken.
    samples: u64,
    /// End of the measured window.
    horizon: SimTime,
}

impl Metrics {
    /// Fresh metrics for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Metrics {
            tx_busy_ms: vec![0.0; nodes],
            rx_busy_ms: vec![0.0; nodes],
            sleep_ms: vec![0.0; nodes],
            orphaned: vec![false; nodes],
            ..Default::default()
        }
    }

    pub(crate) fn record_tx(&mut self, node: usize, kind: MsgKind, bytes: usize, busy_ms: f64) {
        self.tx_busy_ms[node] += busy_ms;
        *self.tx_count.entry(kind).or_insert(0) += 1;
        *self.tx_bytes.entry(kind).or_insert(0) += bytes as u64;
    }

    pub(crate) fn record_rx(&mut self, node: usize, busy_ms: f64) {
        self.rx_busy_ms[node] += busy_ms;
    }

    /// Adjusts a node's accumulated sleep time (negative when an early wake,
    /// a nap re-plan, or a node failure cancels part of a planned nap).
    ///
    /// Every negative correction retracts part of a nap that was credited in
    /// full when it was planned, so the running total can only dip below
    /// zero through f64 rounding in the µs→ms conversions — never by a
    /// material amount. A large negative correction would silently discard
    /// sleep time and skew `avg_transmission_time_pct`'s energy companion
    /// metrics, so it is asserted against instead of clamped away.
    pub(crate) fn record_sleep(&mut self, node: usize, ms: f64) {
        let updated = self.sleep_ms[node] + ms;
        debug_assert!(
            updated >= -SLEEP_EPSILON_MS,
            "sleep accounting underflow on node {node}: {} ms adjusted by {ms} ms",
            self.sleep_ms[node],
        );
        self.sleep_ms[node] = updated.max(0.0);
    }

    pub(crate) fn record_retransmission(&mut self) {
        self.retransmissions += 1;
    }

    pub(crate) fn record_collision(&mut self) {
        self.collisions += 1;
    }

    pub(crate) fn record_loss(&mut self) {
        self.losses += 1;
    }

    pub(crate) fn record_gave_up(&mut self) {
        self.gave_up += 1;
    }

    pub(crate) fn record_orphaned_drop(&mut self, node: usize) {
        self.orphaned_drops += 1;
        if let Some(slot) = self.orphaned.get_mut(node) {
            *slot = true;
        }
    }

    pub(crate) fn record_sample(&mut self) {
        self.samples += 1;
    }

    pub(crate) fn set_horizon(&mut self, t: SimTime) {
        self.horizon = self.horizon.max(t);
    }

    /// The paper's headline metric: mean over nodes of (time spent
    /// transmitting ÷ simulated time), as a percentage.
    ///
    /// Returns 0.0 before any time has elapsed.
    pub fn avg_transmission_time_pct(&self) -> f64 {
        let duration = self.horizon.as_ms() as f64;
        if duration <= 0.0 || self.tx_busy_ms.is_empty() {
            return 0.0;
        }
        let mean_busy: f64 = self.tx_busy_ms.iter().sum::<f64>() / self.tx_busy_ms.len() as f64;
        100.0 * mean_busy / duration
    }

    /// Total transmitting time across all nodes, ms.
    pub fn total_tx_busy_ms(&self) -> f64 {
        self.tx_busy_ms.iter().sum()
    }

    /// A node's transmitting time, ms.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_tx_busy_ms(&self, node: usize) -> f64 {
        self.tx_busy_ms[node]
    }

    /// Total receiving time across all nodes, ms.
    pub fn total_rx_busy_ms(&self) -> f64 {
        self.rx_busy_ms.iter().sum()
    }

    /// Number of transmissions of the given kind.
    pub fn tx_count(&self, kind: MsgKind) -> u64 {
        self.tx_count.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of transmissions of all kinds.
    pub fn tx_count_total(&self) -> u64 {
        self.tx_count.values().sum()
    }

    /// Bytes transmitted of the given kind (headers included).
    pub fn tx_bytes(&self, kind: MsgKind) -> u64 {
        self.tx_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Retransmissions caused by loss or collision.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Frames corrupted by collisions, per receiver.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Frames dropped by the random loss model, per receiver.
    pub fn losses(&self) -> u64 {
        self.losses
    }

    /// Unicast frames abandoned after exhausting retries.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Results dropped at nodes with data but no live route toward the base
    /// station.
    pub fn orphaned_drops(&self) -> u64 {
        self.orphaned_drops
    }

    /// Number of distinct nodes that ever orphan-dropped a result.
    pub fn orphaned_node_count(&self) -> u64 {
        self.orphaned.iter().filter(|&&o| o).count() as u64
    }

    /// Sensor samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total time spent asleep across all nodes, ms.
    pub fn total_sleep_ms(&self) -> f64 {
        self.sleep_ms.iter().sum()
    }

    /// A node's accumulated sleep time, ms.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_sleep_ms(&self, node: usize) -> f64 {
        self.sleep_ms[node]
    }

    /// Whole-network energy over the measured window, millijoules, under the
    /// given power profile. Sensing nodes' idle-listening time is whatever is
    /// left of the horizon after transmit, receive and sleep.
    pub fn total_energy_mj(&self, profile: &EnergyProfile) -> f64 {
        let horizon = self.horizon.as_ms() as f64;
        let per_node: f64 = (0..self.tx_busy_ms.len())
            .map(|n| {
                profile.node_energy_mj(
                    horizon,
                    self.tx_busy_ms[n],
                    self.rx_busy_ms[n],
                    self.sleep_ms[n],
                    0.0,
                )
            })
            .sum();
        per_node + profile.sample_uj * self.samples as f64 / 1000.0
    }

    /// One node's energy over the measured window, millijoules, under the
    /// given power profile (sampling energy excluded — it is accounted
    /// globally, see [`Metrics::total_energy_mj`]).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_energy_mj(&self, profile: &EnergyProfile, node: usize) -> f64 {
        profile.node_energy_mj(
            self.horizon.as_ms() as f64,
            self.tx_busy_ms[node],
            self.rx_busy_ms[node],
            self.sleep_ms[node],
            0.0,
        )
    }

    /// The hottest node's energy over the measured window, millijoules — the
    /// hotspot metric the network-wide mean hides. 0.0 for an empty network.
    pub fn max_node_energy_mj(&self, profile: &EnergyProfile) -> f64 {
        (0..self.tx_busy_ms.len())
            .map(|n| self.node_energy_mj(profile, n))
            .fold(0.0, f64::max)
    }

    /// End of the measured window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// A cheap, plain-data summary of the current counters, suitable for
    /// cross-thread collection and serialization. Per-node vectors are
    /// reduced to totals; everything else is copied verbatim, so two
    /// bit-identical runs yield `==` snapshots.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            avg_transmission_time_pct: self.avg_transmission_time_pct(),
            total_tx_busy_ms: self.total_tx_busy_ms(),
            total_rx_busy_ms: self.total_rx_busy_ms(),
            total_sleep_ms: self.total_sleep_ms(),
            tx_count: self.tx_count.clone(),
            tx_bytes: self.tx_bytes.clone(),
            retransmissions: self.retransmissions,
            collisions: self.collisions,
            losses: self.losses,
            gave_up: self.gave_up,
            orphaned_drops: self.orphaned_drops,
            orphaned_nodes: self.orphaned_node_count(),
            samples: self.samples,
            horizon_ms: self.horizon.as_ms(),
        }
    }
}

/// Plain-data summary of a run's [`Metrics`], cheap to clone across threads
/// and to serialize into campaign reports.
///
/// Produced by [`Metrics::snapshot`]. Two runs with identical event streams
/// produce `==` snapshots (f64 fields included: the simulation is
/// deterministic down to the arithmetic, not just statistically).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The paper's headline metric (§4.1), percent.
    pub avg_transmission_time_pct: f64,
    /// Total transmitting time across all nodes, ms.
    pub total_tx_busy_ms: f64,
    /// Total receiving time across all nodes, ms.
    pub total_rx_busy_ms: f64,
    /// Total sleep time across all nodes, ms.
    pub total_sleep_ms: f64,
    /// Transmissions by message kind.
    pub tx_count: BTreeMap<MsgKind, u64>,
    /// Bytes transmitted by message kind (headers included).
    pub tx_bytes: BTreeMap<MsgKind, u64>,
    /// Retransmissions caused by loss or collision.
    pub retransmissions: u64,
    /// Frames corrupted by collisions, per receiver.
    pub collisions: u64,
    /// Frames dropped by the random loss model, per receiver.
    pub losses: u64,
    /// Unicast frames abandoned after exhausting retries.
    pub gave_up: u64,
    /// Results dropped at nodes with data but no live route to the base
    /// station.
    pub orphaned_drops: u64,
    /// Distinct nodes that ever orphan-dropped a result.
    pub orphaned_nodes: u64,
    /// Sensor samples taken.
    pub samples: u64,
    /// End of the measured window, ms.
    pub horizon_ms: u64,
}

impl MetricsSnapshot {
    /// Total number of transmissions of all kinds.
    pub fn tx_count_total(&self) -> u64 {
        self.tx_count.values().sum()
    }

    /// Total bytes transmitted, all kinds.
    pub fn tx_bytes_total(&self) -> u64 {
        self.tx_bytes.values().sum()
    }
}

/// Answer-completeness accounting for one user query: how much of what the
/// network *should* have delivered actually reached the outside world.
///
/// Two levels of strictness:
///
/// * **epoch completeness** — the fraction of expected result epochs for
///   which a *non-empty* answer was delivered (the base station closes every
///   epoch and emits an answer even when nothing arrived, so an empty answer
///   is indistinguishable from total upstream loss). Expected epochs only
///   count epochs where at least one statically matching node was alive.
/// * **row completeness** — delivered result rows over the rows the
///   statically matching, *surviving* nodes would have produced. This is
///   the metric that degrades when subtrees are orphaned and recovers when
///   routes heal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCompleteness {
    /// Result epochs the query should have produced over its live window.
    pub expected_epochs: u64,
    /// Epochs for which a non-empty answer was delivered.
    pub answered_epochs: u64,
    /// Rows expected from statically matching nodes alive at each epoch.
    pub expected_rows: u64,
    /// Rows actually delivered in the query's answers.
    pub delivered_rows: u64,
}

impl QueryCompleteness {
    /// `answered_epochs / expected_epochs` (1.0 when nothing was expected).
    pub fn epoch_ratio(&self) -> f64 {
        if self.expected_epochs == 0 {
            1.0
        } else {
            self.answered_epochs as f64 / self.expected_epochs as f64
        }
    }

    /// `delivered_rows / expected_rows` (1.0 when nothing was expected).
    /// Can exceed 1.0 when a query's predicate admits rows the static
    /// expectation did not count; callers typically clamp for display.
    pub fn row_ratio(&self) -> f64 {
        if self.expected_rows == 0 {
            1.0
        } else {
            self.delivered_rows as f64 / self.expected_rows as f64
        }
    }

    /// Expected epochs that produced no answer at all.
    pub fn missing_epochs(&self) -> u64 {
        self.expected_epochs.saturating_sub(self.answered_epochs)
    }
}

/// Run-level completeness and repair accounting, produced by the experiment
/// runner and carried in its `RunReport`. Plain data with `PartialEq`:
/// two bit-identical runs yield `==` reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompletenessReport {
    /// Per user query accounting.
    pub per_query: BTreeMap<QueryId, QueryCompleteness>,
    /// Tier-1 re-optimizations triggered by the base station's missing-result
    /// detector.
    pub repairs_triggered: u64,
    /// For each triggered repair, the delay until the first subsequent
    /// answer of the repaired query, ms (repair latency).
    pub repair_latency_ms: Vec<u64>,
}

impl CompletenessReport {
    /// The worst per-query epoch completeness (1.0 for an empty report).
    pub fn min_epoch_ratio(&self) -> f64 {
        self.per_query
            .values()
            .map(QueryCompleteness::epoch_ratio)
            .fold(1.0, f64::min)
    }

    /// The worst per-query row completeness (1.0 for an empty report).
    pub fn min_row_ratio(&self) -> f64 {
        self.per_query
            .values()
            .map(QueryCompleteness::row_ratio)
            .fold(1.0, f64::min)
    }

    /// Mean repair latency over triggered repairs, ms (`None` if none
    /// completed).
    pub fn mean_repair_latency_ms(&self) -> Option<f64> {
        if self.repair_latency_ms.is_empty() {
            return None;
        }
        Some(
            self.repair_latency_ms.iter().sum::<u64>() as f64 / self.repair_latency_ms.len() as f64,
        )
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "avg transmission time: {:.4}% over {}",
            self.avg_transmission_time_pct(),
            self.horizon
        )?;
        for kind in MsgKind::ALL {
            let c = self.tx_count(kind);
            if c > 0 {
                writeln!(f, "  {kind}: {c} msgs, {} bytes", self.tx_bytes(kind))?;
            }
        }
        write!(
            f,
            "  retransmissions: {}, collisions: {}, losses: {}, samples: {}",
            self.retransmissions, self.collisions, self.losses, self.samples
        )
    }
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for Metrics {
    fn write(&self, w: &mut SnapWriter) {
        let Metrics {
            tx_busy_ms,
            rx_busy_ms,
            sleep_ms,
            tx_count,
            tx_bytes,
            retransmissions,
            collisions,
            losses,
            gave_up,
            orphaned_drops,
            orphaned,
            samples,
            horizon,
        } = self;
        tx_busy_ms.write(w);
        rx_busy_ms.write(w);
        sleep_ms.write(w);
        tx_count.write(w);
        tx_bytes.write(w);
        w.put_u64(*retransmissions);
        w.put_u64(*collisions);
        w.put_u64(*losses);
        w.put_u64(*gave_up);
        w.put_u64(*orphaned_drops);
        orphaned.write(w);
        w.put_u64(*samples);
        horizon.write(w);
    }
}

impl Restorable for Metrics {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Metrics {
            tx_busy_ms: Vec::read(r)?,
            rx_busy_ms: Vec::read(r)?,
            sleep_ms: Vec::read(r)?,
            tx_count: std::collections::BTreeMap::read(r)?,
            tx_bytes: std::collections::BTreeMap::read(r)?,
            retransmissions: r.u64()?,
            collisions: r.u64()?,
            losses: r.u64()?,
            gave_up: r.u64()?,
            orphaned_drops: r.u64()?,
            orphaned: Vec::read(r)?,
            samples: r.u64()?,
            horizon: SimTime::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_transmission_time_is_mean_node_duty_cycle() {
        let mut m = Metrics::new(2);
        m.record_tx(0, MsgKind::Result, 30, 100.0);
        m.record_tx(1, MsgKind::Result, 30, 300.0);
        m.set_horizon(SimTime::from_ms(1000));
        // node duty cycles 10% and 30% → mean 20%.
        assert!((m.avg_transmission_time_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_yields_zero() {
        let m = Metrics::new(4);
        assert_eq!(m.avg_transmission_time_pct(), 0.0);
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let mut m = Metrics::new(1);
        m.record_tx(0, MsgKind::Result, 10, 1.0);
        m.record_tx(0, MsgKind::Result, 20, 1.0);
        m.record_tx(0, MsgKind::Maintenance, 5, 1.0);
        assert_eq!(m.tx_count(MsgKind::Result), 2);
        assert_eq!(m.tx_bytes(MsgKind::Result), 30);
        assert_eq!(m.tx_count(MsgKind::Maintenance), 1);
        assert_eq!(m.tx_count(MsgKind::QueryAbort), 0);
        assert_eq!(m.tx_count_total(), 3);
    }

    #[test]
    fn event_counters() {
        let mut m = Metrics::new(1);
        m.record_retransmission();
        m.record_collision();
        m.record_collision();
        m.record_loss();
        m.record_gave_up();
        m.record_sample();
        assert_eq!(m.retransmissions(), 1);
        assert_eq!(m.collisions(), 2);
        assert_eq!(m.losses(), 1);
        assert_eq!(m.gave_up(), 1);
        assert_eq!(m.samples(), 1);
    }

    #[test]
    fn sleep_accumulates_and_retracts() {
        let mut m = Metrics::new(2);
        m.record_sleep(0, 500.0); // plan a 500 ms nap
        m.record_sleep(0, -200.0); // early wake retracts the unspent 200 ms
        m.record_sleep(1, 100.0);
        assert!((m.node_sleep_ms(0) - 300.0).abs() < 1e-9);
        assert!((m.total_sleep_ms() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_tolerates_rounding_epsilon() {
        let mut m = Metrics::new(1);
        m.record_sleep(0, 250.0);
        // µs→ms double rounding can retract a hair more than was credited.
        m.record_sleep(0, -250.0 - 1e-9);
        assert_eq!(m.node_sleep_ms(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "sleep accounting underflow")]
    #[cfg(debug_assertions)]
    fn sleep_underflow_is_a_bug() {
        let mut m = Metrics::new(1);
        m.record_sleep(0, 100.0);
        // Retracting more than was ever credited is a logic error, not
        // rounding; it must not be silently clamped away.
        m.record_sleep(0, -500.0);
    }

    #[test]
    fn snapshot_mirrors_counters() {
        let mut m = Metrics::new(2);
        m.record_tx(0, MsgKind::Result, 30, 100.0);
        m.record_tx(1, MsgKind::Maintenance, 8, 50.0);
        m.record_rx(0, 40.0);
        m.record_sleep(1, 700.0);
        m.record_retransmission();
        m.record_loss();
        m.record_sample();
        m.set_horizon(SimTime::from_ms(1000));
        let s = m.snapshot();
        assert_eq!(s.avg_transmission_time_pct, m.avg_transmission_time_pct());
        assert_eq!(s.total_tx_busy_ms, 150.0);
        assert_eq!(s.total_rx_busy_ms, 40.0);
        assert_eq!(s.total_sleep_ms, 700.0);
        assert_eq!(s.tx_count[&MsgKind::Result], 1);
        assert_eq!(s.tx_bytes[&MsgKind::Maintenance], 8);
        assert_eq!(s.tx_count_total(), 2);
        assert_eq!(s.tx_bytes_total(), 38);
        assert_eq!(s.retransmissions, 1);
        assert_eq!(s.losses, 1);
        assert_eq!(s.samples, 1);
        assert_eq!(s.horizon_ms, 1000);
        // Snapshots of identical metric states compare equal.
        assert_eq!(s, m.snapshot());
        assert_ne!(s, Metrics::new(2).snapshot());
    }

    /// Compile-enforced completeness: every counter `Metrics` holds must
    /// surface in `MetricsSnapshot`. Both structs are destructured without
    /// `..`, so adding a field to either one without teaching `snapshot()`
    /// (and this test) about it fails to compile — the orphan counters were
    /// once added to `Metrics` ahead of the snapshot struct, and this is the
    /// guard against that recurring.
    #[test]
    fn snapshot_carries_every_metrics_field() {
        let mut m = Metrics::new(3);
        m.record_tx(0, MsgKind::Result, 30, 100.0);
        m.record_rx(1, 40.0);
        m.record_sleep(2, 700.0);
        m.record_retransmission();
        m.record_collision();
        m.record_loss();
        m.record_gave_up();
        m.record_orphaned_drop(1);
        m.record_sample();
        m.set_horizon(SimTime::from_ms(1000));

        // Exhaustive: a new private field in Metrics breaks this pattern.
        let Metrics {
            tx_busy_ms,
            rx_busy_ms,
            sleep_ms,
            tx_count,
            tx_bytes,
            retransmissions,
            collisions,
            losses,
            gave_up,
            orphaned_drops,
            orphaned,
            samples,
            horizon,
        } = m.clone();

        // Exhaustive: a new public field in MetricsSnapshot breaks this one.
        let MetricsSnapshot {
            avg_transmission_time_pct,
            total_tx_busy_ms,
            total_rx_busy_ms,
            total_sleep_ms,
            tx_count: snap_tx_count,
            tx_bytes: snap_tx_bytes,
            retransmissions: snap_retransmissions,
            collisions: snap_collisions,
            losses: snap_losses,
            gave_up: snap_gave_up,
            orphaned_drops: snap_orphaned_drops,
            orphaned_nodes,
            samples: snap_samples,
            horizon_ms,
        } = m.snapshot();

        assert_eq!(avg_transmission_time_pct, m.avg_transmission_time_pct());
        assert_eq!(total_tx_busy_ms, tx_busy_ms.iter().sum::<f64>());
        assert_eq!(total_rx_busy_ms, rx_busy_ms.iter().sum::<f64>());
        assert_eq!(total_sleep_ms, sleep_ms.iter().sum::<f64>());
        assert_eq!(snap_tx_count, tx_count);
        assert_eq!(snap_tx_bytes, tx_bytes);
        assert_eq!(snap_retransmissions, retransmissions);
        assert_eq!(snap_collisions, collisions);
        assert_eq!(snap_losses, losses);
        assert_eq!(snap_gave_up, gave_up);
        assert_eq!(snap_orphaned_drops, orphaned_drops);
        assert_eq!(
            orphaned_nodes,
            orphaned.iter().filter(|&&o| o).count() as u64
        );
        assert_eq!(snap_samples, samples);
        assert_eq!(horizon_ms, horizon.as_ms());
    }

    #[test]
    fn orphan_counters_track_drops_and_distinct_nodes() {
        let mut m = Metrics::new(4);
        m.record_orphaned_drop(2);
        m.record_orphaned_drop(2);
        m.record_orphaned_drop(3);
        assert_eq!(m.orphaned_drops(), 3);
        assert_eq!(m.orphaned_node_count(), 2);
        let s = m.snapshot();
        assert_eq!(s.orphaned_drops, 3);
        assert_eq!(s.orphaned_nodes, 2);
    }

    #[test]
    fn completeness_ratios() {
        let q = QueryCompleteness {
            expected_epochs: 10,
            answered_epochs: 9,
            expected_rows: 40,
            delivered_rows: 30,
        };
        assert!((q.epoch_ratio() - 0.9).abs() < 1e-12);
        assert!((q.row_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(q.missing_epochs(), 1);
        // Nothing expected => complete by definition.
        let empty = QueryCompleteness::default();
        assert_eq!(empty.epoch_ratio(), 1.0);
        assert_eq!(empty.row_ratio(), 1.0);

        let mut report = CompletenessReport::default();
        assert_eq!(report.min_epoch_ratio(), 1.0);
        assert_eq!(report.mean_repair_latency_ms(), None);
        report.per_query.insert(QueryId(1), q);
        report
            .per_query
            .insert(QueryId(2), QueryCompleteness::default());
        assert!((report.min_epoch_ratio() - 0.9).abs() < 1e-12);
        assert!((report.min_row_ratio() - 0.75).abs() < 1e-12);
        report.repairs_triggered = 2;
        report.repair_latency_ms = vec![1000, 3000];
        assert_eq!(report.mean_repair_latency_ms(), Some(2000.0));
    }

    #[test]
    fn per_node_energy_sums_to_the_total_and_finds_the_hotspot() {
        let p = EnergyProfile::default();
        let mut m = Metrics::new(3);
        m.record_tx(0, MsgKind::Result, 30, 400.0); // the hotspot
        m.record_tx(1, MsgKind::Result, 30, 10.0);
        m.record_rx(2, 50.0);
        m.record_sleep(1, 500.0);
        m.record_sample();
        m.set_horizon(SimTime::from_ms(1000));
        let per_node: f64 = (0..3).map(|n| m.node_energy_mj(&p, n)).sum();
        let sample_mj = p.sample_uj / 1000.0;
        assert!((per_node + sample_mj - m.total_energy_mj(&p)).abs() < 1e-9);
        assert_eq!(m.max_node_energy_mj(&p), m.node_energy_mj(&p, 0));
        assert!(m.max_node_energy_mj(&p) > m.node_energy_mj(&p, 1));
        assert_eq!(Metrics::new(0).max_node_energy_mj(&p), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new(1);
        m.record_tx(0, MsgKind::Result, 10, 1.0);
        m.set_horizon(SimTime::from_ms(10));
        let s = m.to_string();
        assert!(s.contains("avg transmission time"));
        assert!(s.contains("result"));
    }
}
