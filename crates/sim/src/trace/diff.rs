//! Trace-divergence localizer: find the first place two runs' traces part
//! ways.
//!
//! Two runs of this simulator with identical configuration produce
//! byte-identical JSON-lines traces — that *is* the determinism contract.
//! So when two traces differ (a baseline vs a candidate binary, or a
//! checkpoint forked with two fault plans), the first differing record is
//! the first observable behavioural departure, and everything before it is
//! provably shared history. [`trace_diff`] compares two traces record by
//! record (headers skipped, byte-truncated tails tolerated) and reports:
//!
//! - the first diverging record index, with each side's record decoded into
//!   kind / time / node for display and an N-record context window per side;
//! - per-kind record-count deltas over the whole files, which characterize
//!   *how* the runs differ after the split (e.g. one side retries more);
//! - whether either file ended in a truncated partial record.
//!
//! The workflow this powers: when the report-diff gate flags a divergent
//! `RunReport`, restore both variants from the nearest checkpoint with
//! tracing enabled, re-run, and hand both traces to [`trace_diff`] — see
//! `examples/divergence.rs` for the end-to-end recipe.

use std::collections::BTreeMap;
use std::fmt;

use super::{json_str_field, json_u64_field, strip_truncated_tail};

/// One side's record at the divergence point, decoded for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergentRecord {
    /// The raw JSON record line.
    pub line: String,
    /// The record's `ev` kind tag.
    pub kind: Option<String>,
    /// The record's simulation time (`t`), µs.
    pub time_us: Option<u64>,
    /// The node the record names (`node`, `src`, `from`, or `user` — the
    /// same precedence [`super::chrome_trace`] uses for its track id).
    pub node: Option<u64>,
}

impl DivergentRecord {
    fn decode(line: &str) -> Self {
        DivergentRecord {
            line: line.to_string(),
            kind: json_str_field(line, "ev"),
            time_us: json_u64_field(line, "t"),
            node: json_u64_field(line, "node")
                .or_else(|| json_u64_field(line, "src"))
                .or_else(|| json_u64_field(line, "from"))
                .or_else(|| json_u64_field(line, "user")),
        }
    }
}

impl fmt::Display for DivergentRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kind={} t={}µs node={}",
            self.kind.as_deref().unwrap_or("?"),
            self.time_us.map_or("?".into(), |t| t.to_string()),
            self.node.map_or("?".into(), |n| n.to_string()),
        )
    }
}

/// The first point two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based record index (headers excluded) of the first difference.
    pub index: usize,
    /// Side A's record there (`None`: side A ended first).
    pub a: Option<DivergentRecord>,
    /// Side B's record there (`None`: side B ended first).
    pub b: Option<DivergentRecord>,
    /// Side A's records around the divergence (up to N before and after).
    pub context_a: Vec<String>,
    /// Side B's records around the divergence (up to N before and after).
    pub context_b: Vec<String>,
}

/// Record-count delta for one event kind between the two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindDelta {
    /// The event kind tag.
    pub kind: String,
    /// Records of this kind in trace A.
    pub count_a: u64,
    /// Records of this kind in trace B.
    pub count_b: u64,
}

/// Result of [`trace_diff`]: divergence point (if any) plus whole-file
/// per-kind statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Record count in trace A (headers and truncated tail excluded).
    pub records_a: usize,
    /// Record count in trace B.
    pub records_b: usize,
    /// Whether trace A ended in a byte-truncated partial record.
    pub truncated_a: bool,
    /// Whether trace B ended in a byte-truncated partial record.
    pub truncated_b: bool,
    /// Kinds whose record counts differ between the traces, sorted by kind.
    pub kind_deltas: Vec<KindDelta>,
    /// The first differing record, or `None` if the traces agree
    /// byte-for-byte over their full (untruncated) length.
    pub divergence: Option<Divergence>,
}

impl TraceDiff {
    /// Whether the traces are byte-identical over their complete records.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Collects the record lines of one trace: header lines (no `ev` field) are
/// skipped, and a byte-truncated final line is dropped and flagged.
fn record_lines(text: &str) -> (Vec<&str>, bool) {
    let (text, truncated) = strip_truncated_tail(text);
    let records = text
        .lines()
        .filter(|l| !l.is_empty() && l.contains("\"ev\":\""))
        .collect();
    (records, truncated)
}

/// Compares two JSON-lines traces and localizes their first divergence.
///
/// Records are compared byte-for-byte in order — byte equality is exactly
/// the engine's determinism contract, so the first differing record is the
/// first observable behavioural difference between the runs. `context` is
/// the number of records to include before and after the divergence point
/// in each side's context window.
pub fn trace_diff(a: &str, b: &str, context: usize) -> TraceDiff {
    let (recs_a, truncated_a) = record_lines(a);
    let (recs_b, truncated_b) = record_lines(b);

    let mut counts_a: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts_b: BTreeMap<String, u64> = BTreeMap::new();
    for l in &recs_a {
        if let Some(k) = json_str_field(l, "ev") {
            *counts_a.entry(k).or_insert(0) += 1;
        }
    }
    for l in &recs_b {
        if let Some(k) = json_str_field(l, "ev") {
            *counts_b.entry(k).or_insert(0) += 1;
        }
    }
    let mut kinds: Vec<&String> = counts_a.keys().chain(counts_b.keys()).collect();
    kinds.sort();
    kinds.dedup();
    let kind_deltas: Vec<KindDelta> = kinds
        .into_iter()
        .filter_map(|k| {
            let ca = counts_a.get(k).copied().unwrap_or(0);
            let cb = counts_b.get(k).copied().unwrap_or(0);
            (ca != cb).then(|| KindDelta {
                kind: k.clone(),
                count_a: ca,
                count_b: cb,
            })
        })
        .collect();

    let shared = recs_a.len().min(recs_b.len());
    let split = (0..shared)
        .find(|&i| recs_a[i] != recs_b[i])
        .or((recs_a.len() != recs_b.len()).then_some(shared));

    let divergence = split.map(|index| {
        let window = |recs: &[&str]| -> Vec<String> {
            let lo = index.saturating_sub(context);
            let hi = recs.len().min(index + context + 1);
            recs[lo.min(recs.len())..hi]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };
        Divergence {
            index,
            a: recs_a.get(index).map(|l| DivergentRecord::decode(l)),
            b: recs_b.get(index).map(|l| DivergentRecord::decode(l)),
            context_a: window(&recs_a),
            context_b: window(&recs_b),
        }
    });

    TraceDiff {
        records_a: recs_a.len(),
        records_b: recs_b.len(),
        truncated_a,
        truncated_b,
        kind_deltas,
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace_header;
    use super::*;

    fn rec(t: u64, ev: &str, node: u64) -> String {
        format!("{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node}}}")
    }

    fn trace_of(recs: &[String]) -> String {
        let mut s = trace_header();
        s.push('\n');
        for r in recs {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = trace_of(&[rec(10, "frame-tx", 1), rec(20, "frame-rx", 2)]);
        let d = trace_diff(&t, &t, 3);
        assert!(d.identical());
        assert_eq!(d.records_a, 2);
        assert_eq!(d.records_b, 2);
        assert!(d.kind_deltas.is_empty());
    }

    #[test]
    fn first_differing_record_is_named_with_kind_time_node() {
        let base = vec![rec(10, "frame-tx", 1), rec(20, "frame-rx", 2)];
        let mut forked = base.clone();
        forked.push(rec(30, "fault-crash", 7));
        let mut diverged = base.clone();
        diverged.push(rec(31, "frame-tx", 4));
        let d = trace_diff(&trace_of(&forked), &trace_of(&diverged), 1);
        let div = d.divergence.expect("diverges at index 2");
        assert_eq!(div.index, 2);
        let a = div.a.expect("side A has a record");
        assert_eq!(a.kind.as_deref(), Some("fault-crash"));
        assert_eq!(a.time_us, Some(30));
        assert_eq!(a.node, Some(7));
        let b = div.b.expect("side B has a record");
        assert_eq!(b.kind.as_deref(), Some("frame-tx"));
        // Context: 1 before + the diverging record.
        assert_eq!(div.context_a.len(), 2);
        assert_eq!(div.context_a[0], base[1]);
        // Count deltas name both changed kinds.
        assert_eq!(d.kind_deltas.len(), 2);
        assert_eq!(d.kind_deltas[0].kind, "fault-crash");
        assert_eq!((d.kind_deltas[0].count_a, d.kind_deltas[0].count_b), (1, 0));
        assert_eq!(d.kind_deltas[1].kind, "frame-tx");
        assert_eq!((d.kind_deltas[1].count_a, d.kind_deltas[1].count_b), (1, 2));
    }

    #[test]
    fn prefix_trace_diverges_where_the_shorter_side_ends() {
        let long = vec![rec(10, "frame-tx", 1), rec(20, "frame-rx", 2)];
        let short = vec![rec(10, "frame-tx", 1)];
        let d = trace_diff(&trace_of(&long), &trace_of(&short), 2);
        let div = d.divergence.expect("length mismatch diverges");
        assert_eq!(div.index, 1);
        assert!(div.a.is_some());
        assert!(div.b.is_none(), "side B ended first");
        assert_eq!(div.context_b.len(), 1); // only the record before the end
    }

    #[test]
    fn headers_and_blank_lines_are_not_records() {
        let a = trace_of(&[rec(10, "frame-tx", 1)]);
        let b = format!("\n{}\n", trace_of(&[rec(10, "frame-tx", 1)]));
        assert!(trace_diff(&a, &b, 2).identical());
    }

    #[test]
    fn byte_truncated_tail_is_tolerated_and_flagged() {
        let full = trace_of(&[rec(10, "frame-tx", 1), rec(20, "frame-rx", 2)]);
        // Chop the file mid-way through the final record.
        let cut = &full[..full.len() - 7];
        assert!(!cut.ends_with('\n'));
        let d = trace_diff(&full, cut, 2);
        assert!(d.truncated_b);
        assert!(!d.truncated_a);
        assert_eq!(d.records_b, 1, "partial record excluded");
        // The complete prefix matches; divergence is the missing record.
        let div = d.divergence.expect("shorter side diverges at its end");
        assert_eq!(div.index, 1);
        assert!(div.b.is_none());
    }
}
