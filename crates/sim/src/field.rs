//! Synthetic sensor fields: what the motes measure.
//!
//! The paper runs on real TinyDB attributes; we substitute deterministic
//! synthetic fields. [`CorrelatedField`] mimics the spatial/temporal
//! correlation the paper's §3.2.2 discussion relies on ("sensor readings are
//! often spatially and temporally correlated"); [`UniformField`] matches the
//! uniform-distribution assumption of the base-station estimator; and
//! [`ConstantField`] makes tests deterministic.

use crate::time::SimTime;
use crate::topology::{NodeId, Position, Topology};
use std::fmt::Debug;
use ttmqo_query::Attribute;

/// A source of sensor readings, queried by the simulator whenever a node
/// samples an attribute.
///
/// Implementations must be deterministic in `(node, attr, time)` so that
/// simulation runs are reproducible and so that two queries sampling the same
/// attribute in the same epoch observe the same value.
pub trait SensorField: Debug {
    /// The reading node `node` observes for `attr` at time `t`.
    fn reading(&self, node: NodeId, attr: Attribute, t: SimTime) -> f64;
}

/// Every node always reads the midpoint of each attribute's domain, plus its
/// node id for [`Attribute::NodeId`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantField;

impl SensorField for ConstantField {
    fn reading(&self, node: NodeId, attr: Attribute, _t: SimTime) -> f64 {
        if attr == Attribute::NodeId {
            return node.0 as f64;
        }
        let (lo, hi) = attr.domain();
        (lo + hi) / 2.0
    }
}

/// Deterministic hash-based "uniform iid" field: every `(node, attr, epoch)`
/// triple gets an independent-looking value uniform over the attribute
/// domain. Values are constant within a base epoch (2048 ms) so queries
/// sharing an acquisition observe identical readings.
#[derive(Debug, Clone, Copy)]
pub struct UniformField {
    seed: u64,
    /// Readings change only every `hold_ms` milliseconds.
    hold_ms: u64,
}

impl UniformField {
    /// A uniform field with the given seed, holding values for one base epoch.
    pub fn new(seed: u64) -> Self {
        UniformField {
            seed,
            hold_ms: ttmqo_query::BASE_EPOCH_MS,
        }
    }

    /// Overrides how long a value is held before being redrawn.
    ///
    /// # Panics
    ///
    /// Panics if `hold_ms` is zero.
    pub fn with_hold_ms(mut self, hold_ms: u64) -> Self {
        assert!(hold_ms > 0, "hold interval must be positive");
        self.hold_ms = hold_ms;
        self
    }

    fn unit(&self, node: NodeId, attr: Attribute, t: SimTime) -> f64 {
        let bucket = t.as_ms() / self.hold_ms;
        let h = splitmix(
            self.seed ^ (node.0 as u64) << 32 ^ (attr as u64) << 16 ^ bucket.wrapping_mul(0x9E37),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SensorField for UniformField {
    fn reading(&self, node: NodeId, attr: Attribute, t: SimTime) -> f64 {
        if attr == Attribute::NodeId {
            return node.0 as f64;
        }
        let (lo, hi) = attr.domain();
        lo + self.unit(node, attr, t) * (hi - lo)
    }
}

/// A spatially and temporally correlated field: a smooth spatial gradient
/// plus a slow global sinusoidal drift plus small deterministic noise.
///
/// Neighbouring nodes observe similar values and values change slowly over
/// time — the regime where the in-network tier's shared partial aggregation
/// is most effective.
#[derive(Debug, Clone)]
pub struct CorrelatedField {
    seed: u64,
    /// Fraction of the domain covered by the spatial gradient, `[0, 1]`.
    gradient_strength: f64,
    /// Fraction of the domain covered by the temporal drift, `[0, 1]`.
    drift_strength: f64,
    /// Fraction of the domain used for per-node noise, `[0, 1]`.
    noise_strength: f64,
    /// Spatial extent used to normalize the gradient, feet.
    extent_ft: f64,
    /// Period of the temporal drift, ms.
    period_ms: u64,
}

impl CorrelatedField {
    /// A correlated field sized to a topology's bounding box.
    pub fn for_topology(seed: u64, topo: &Topology) -> Self {
        let extent = topo
            .nodes()
            .map(|n| {
                let Position { x, y } = topo.position(n);
                x.max(y)
            })
            .fold(1.0_f64, f64::max);
        CorrelatedField {
            seed,
            gradient_strength: 0.5,
            drift_strength: 0.2,
            noise_strength: 0.05,
            extent_ft: extent,
            period_ms: 600_000,
        }
    }

    /// Overrides the relative strengths of gradient, drift and noise.
    ///
    /// # Panics
    ///
    /// Panics if any strength is negative or the sum exceeds 1.
    pub fn with_strengths(mut self, gradient: f64, drift: f64, noise: f64) -> Self {
        assert!(
            gradient >= 0.0 && drift >= 0.0 && noise >= 0.0 && gradient + drift + noise <= 1.0,
            "strengths must be non-negative and sum to at most 1"
        );
        self.gradient_strength = gradient;
        self.drift_strength = drift;
        self.noise_strength = noise;
        self
    }
}

/// A correlated field bound to a concrete topology (needed to map node ids to
/// positions).
#[derive(Debug, Clone)]
pub struct BoundCorrelatedField {
    field: CorrelatedField,
    positions: Vec<Position>,
}

impl CorrelatedField {
    /// Binds the field to a topology, capturing node positions.
    pub fn bind(self, topo: &Topology) -> BoundCorrelatedField {
        let positions = topo.nodes().map(|n| topo.position(n)).collect();
        BoundCorrelatedField {
            field: self,
            positions,
        }
    }
}

impl SensorField for BoundCorrelatedField {
    fn reading(&self, node: NodeId, attr: Attribute, t: SimTime) -> f64 {
        if attr == Attribute::NodeId {
            return node.0 as f64;
        }
        let f = &self.field;
        let (lo, hi) = attr.domain();
        let width = hi - lo;
        let pos = self
            .positions
            .get(node.index())
            .copied()
            .unwrap_or_default();

        // Smooth diagonal gradient across the deployment.
        let gradient = (pos.x + pos.y) / (2.0 * f.extent_ft);
        // Slow sinusoidal drift shared by all nodes.
        let phase = t.as_ms() as f64 / f.period_ms as f64 * std::f64::consts::TAU;
        let drift = 0.5 + 0.5 * phase.sin();
        // Small per-(node, attr, epoch-bucket) deterministic noise.
        let bucket = t.as_ms() / ttmqo_query::BASE_EPOCH_MS;
        let h = splitmix(f.seed ^ (node.0 as u64) << 24 ^ (attr as u64) << 8 ^ bucket);
        let noise = (h >> 11) as f64 / (1u64 << 53) as f64;

        let base = 0.5 * (1.0 - f.gradient_strength - f.drift_strength - f.noise_strength);
        let unit = base
            + f.gradient_strength * gradient
            + f.drift_strength * drift
            + f.noise_strength * noise;
        lo + unit.clamp(0.0, 1.0) * width
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn constant_field_is_constant_and_exposes_nodeid() {
        let f = ConstantField;
        let a = f.reading(NodeId(3), Attribute::Light, SimTime::ZERO);
        let b = f.reading(NodeId(3), Attribute::Light, SimTime::from_ms(99999));
        assert_eq!(a, b);
        assert_eq!(f.reading(NodeId(7), Attribute::NodeId, SimTime::ZERO), 7.0);
    }

    #[test]
    fn uniform_field_is_deterministic_and_in_domain() {
        let f = UniformField::new(42);
        for node in 0..20u16 {
            for t in [0u64, 2048, 4096, 100_000] {
                let v = f.reading(NodeId(node), Attribute::Light, SimTime::from_ms(t));
                assert!((0.0..=1000.0).contains(&v));
                let v2 = f.reading(NodeId(node), Attribute::Light, SimTime::from_ms(t));
                assert_eq!(v, v2, "deterministic");
            }
        }
    }

    #[test]
    fn uniform_field_holds_within_base_epoch() {
        let f = UniformField::new(7);
        let a = f.reading(NodeId(1), Attribute::Light, SimTime::from_ms(0));
        let b = f.reading(NodeId(1), Attribute::Light, SimTime::from_ms(2047));
        assert_eq!(a, b);
        let c = f.reading(NodeId(1), Attribute::Light, SimTime::from_ms(2048));
        // Overwhelmingly likely to differ; equal would indicate the bucket is
        // ignored.
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_field_covers_the_domain() {
        let f = UniformField::new(123);
        let vals: Vec<f64> = (0..200u16)
            .map(|n| f.reading(NodeId(n), Attribute::Light, SimTime::ZERO))
            .collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 200.0, "min {lo} too high for uniform");
        assert!(hi > 800.0, "max {hi} too low for uniform");
    }

    #[test]
    fn correlated_field_neighbors_are_similar() {
        let topo = Topology::grid(8).unwrap();
        let f = CorrelatedField::for_topology(5, &topo).bind(&topo);
        let t = SimTime::from_ms(2048);
        // Adjacent nodes differ far less than opposite corners.
        let v_a = f.reading(NodeId(9), Attribute::Light, t);
        let v_b = f.reading(NodeId(10), Attribute::Light, t);
        let v_far = f.reading(NodeId(63), Attribute::Light, t);
        assert!((v_a - v_b).abs() < (v_a - v_far).abs());
    }

    #[test]
    fn correlated_field_changes_slowly_in_time() {
        let topo = Topology::grid(4).unwrap();
        let f = CorrelatedField::for_topology(5, &topo).bind(&topo);
        let v0 = f.reading(NodeId(5), Attribute::Temp, SimTime::from_ms(0));
        let v1 = f.reading(NodeId(5), Attribute::Temp, SimTime::from_ms(2048));
        let (lo, hi) = Attribute::Temp.domain();
        assert!((v1 - v0).abs() < 0.2 * (hi - lo), "drift too fast");
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn bad_strengths_panic() {
        let topo = Topology::grid(2).unwrap();
        let _ = CorrelatedField::for_topology(1, &topo).with_strengths(0.9, 0.9, 0.9);
    }

    #[test]
    fn correlated_values_stay_in_domain() {
        let topo = Topology::grid(8).unwrap();
        let f = CorrelatedField::for_topology(99, &topo)
            .with_strengths(0.6, 0.3, 0.1)
            .bind(&topo);
        for n in topo.nodes() {
            for t in [0u64, 2048, 300_000, 599_000] {
                let v = f.reading(n, Attribute::Humidity, SimTime::from_ms(t));
                assert!((0.0..=100.0).contains(&v), "{v} out of humidity domain");
            }
        }
    }
}
