//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since simulation start.
///
/// Millisecond granularity matches the paper's epoch units (multiples of
/// 2048 ms) while staying coarse enough that a `u64` never overflows in any
/// realistic run.
///
/// # Examples
///
/// ```
/// use ttmqo_sim::SimTime;
///
/// let t = SimTime::ZERO + 2048;
/// assert_eq!(t.as_ms(), 2048);
/// assert_eq!(t - SimTime::ZERO, 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds since start.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since simulation start.
    pub fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition of a millisecond delay.
    pub fn saturating_add(self, ms: u64) -> SimTime {
        SimTime(self.0.saturating_add(ms))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Elapsed milliseconds between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("time subtraction went negative")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(1000);
        assert_eq!((t + 24).as_ms(), 1024);
        let mut u = t;
        u += 1000;
        assert_eq!(u.as_ms(), 2000);
        assert_eq!(u - t, 1000);
        assert_eq!(t.as_secs_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_elapsed_panics() {
        let _ = SimTime::ZERO - SimTime::from_ms(1);
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::from_ms(u64::MAX);
        assert_eq!(t.saturating_add(10).as_ms(), u64::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ms(1) < SimTime::from_ms(2));
        assert_eq!(SimTime::from_ms(5).to_string(), "t=5ms");
    }
}
