//! Deterministic fault injection: scripted and randomly sampled node
//! crashes/recoveries, link-quality degradation windows, and per-region
//! loss-rate overrides.
//!
//! The paper's evaluation assumes a lossless channel and immortal nodes
//! (§4); a [`FaultPlan`] is how a run departs from that assumption in a
//! reproducible way. A plan is pure data: [`FaultPlan::materialize`] expands
//! it against a concrete [`Topology`] into a [`FaultSchedule`] (the exact
//! crash/recovery timeline, sampled with the plan's own seed — never the
//! simulation RNG) and [`Simulator::install_fault_plan`] applies it. The
//! loss-side elements become an engine overlay consulted on the delivery
//! path; crashes become [`Simulator::schedule_failure`] /
//! [`Simulator::schedule_recovery`] events.
//!
//! An empty plan installs nothing — the engine keeps its exact no-fault
//! event and RNG stream, so fault-free runs stay bit-for-bit identical to
//! runs built before this module existed.
//!
//! [`Simulator::install_fault_plan`]: crate::Simulator::install_fault_plan
//! [`Simulator::schedule_failure`]: crate::Simulator::schedule_failure
//! [`Simulator::schedule_recovery`]: crate::Simulator::schedule_recovery

use crate::topology::{NodeId, Topology};

/// One scripted crash of a node, with an optional scripted reboot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// The node to crash.
    pub node: NodeId,
    /// Crash time, ms.
    pub at_ms: u64,
    /// Reboot time, ms (`None` = the node stays dead).
    pub recover_at_ms: Option<u64>,
}

/// A randomly sampled crash population: a fraction of the non-base-station
/// nodes crash at times drawn uniformly from a window. Sampling uses the
/// plan's seed, so the same plan over the same topology always picks the
/// same victims at the same times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCrashes {
    /// Fraction of non-base-station nodes to crash, in `[0, 1]`.
    pub fraction: f64,
    /// Earliest crash time, ms.
    pub from_ms: u64,
    /// Latest crash time, ms (must be ≥ `from_ms`).
    pub until_ms: u64,
    /// If set, each victim reboots this long after crashing; `None` =
    /// victims stay dead.
    pub outage_ms: Option<u64>,
}

/// A time window during which every link loses an extra independent
/// fraction of frames (on top of the radio's own loss model) — fading,
/// weather, interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// Window start, ms (inclusive).
    pub from_ms: u64,
    /// Window end, ms (exclusive; `u64::MAX` = open-ended).
    pub until_ms: u64,
    /// Extra per-receiver loss probability, combined independently with the
    /// base loss: `p = 1 − (1−p_base)·(1−added_loss)`.
    pub added_loss: f64,
}

impl LinkDegradation {
    fn contains(&self, t_us: u64) -> bool {
        self.from_ms.saturating_mul(1000) <= t_us
            && (self.until_ms == u64::MAX || t_us < self.until_ms.saturating_mul(1000))
    }
}

/// A rectangular region whose receivers see *at least* `loss_rate` during a
/// time window (localized obstruction: machinery, a wall of rain). Node
/// membership is decided once at materialization from node positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionLossOverride {
    /// Region lower-left corner, feet.
    pub x0: f64,
    /// Region lower-left corner, feet.
    pub y0: f64,
    /// Region upper-right corner, feet.
    pub x1: f64,
    /// Region upper-right corner, feet.
    pub y1: f64,
    /// Window start, ms (inclusive).
    pub from_ms: u64,
    /// Window end, ms (exclusive; `u64::MAX` = open-ended).
    pub until_ms: u64,
    /// Floor on the per-receiver loss probability inside the region.
    pub loss_rate: f64,
}

impl RegionLossOverride {
    fn contains_time(&self, t_us: u64) -> bool {
        self.from_ms.saturating_mul(1000) <= t_us
            && (self.until_ms == u64::MAX || t_us < self.until_ms.saturating_mul(1000))
    }

    fn contains_position(&self, x: f64, y: f64) -> bool {
        self.x0 <= x && x <= self.x1 && self.y0 <= y && y <= self.y1
    }
}

/// A deterministic, seedable description of everything that goes wrong
/// during a run.
///
/// # Examples
///
/// ```
/// use ttmqo_sim::{FaultPlan, NodeId, Topology};
///
/// let topo = Topology::grid(4)?;
/// let plan = FaultPlan::scripted(vec![(NodeId(5), 10_000, None)]);
/// let schedule = plan.materialize(&topo);
/// assert!(schedule.alive_at(NodeId(5), 5_000));
/// assert!(!schedule.alive_at(NodeId(5), 20_000));
/// assert!(FaultPlan::default().is_empty());
/// # Ok::<(), ttmqo_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the plan's own sampling (victim choice, crash times).
    /// Independent of the simulation seed: the same plan yields the same
    /// schedule whatever the engine is seeded with.
    pub seed: u64,
    /// Scripted crashes.
    pub crashes: Vec<CrashEvent>,
    /// Randomly sampled crash population.
    pub random_crashes: Option<RandomCrashes>,
    /// Global link-quality degradation windows.
    pub degradations: Vec<LinkDegradation>,
    /// Per-region loss-rate overrides.
    pub region_overrides: Vec<RegionLossOverride>,
}

impl FaultPlan {
    /// A plan of scripted crashes only: `(node, at_ms, recover_at_ms)`.
    pub fn scripted(crashes: Vec<(NodeId, u64, Option<u64>)>) -> Self {
        FaultPlan {
            crashes: crashes
                .into_iter()
                .map(|(node, at_ms, recover_at_ms)| CrashEvent {
                    node,
                    at_ms,
                    recover_at_ms,
                })
                .collect(),
            ..Self::default()
        }
    }

    /// A plan crashing a sampled fraction of non-base-station nodes within
    /// `[from_ms, until_ms]`, permanently.
    pub fn sampled(seed: u64, fraction: f64, from_ms: u64, until_ms: u64) -> Self {
        FaultPlan {
            seed,
            random_crashes: Some(RandomCrashes {
                fraction,
                from_ms,
                until_ms,
                outage_ms: None,
            }),
            ..Self::default()
        }
    }

    /// Whether the plan injects nothing (the engine stays untouched).
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.random_crashes.is_none()
            && self.degradations.is_empty()
            && self.region_overrides.is_empty()
    }

    /// Whether the plan carries any loss-side element (degradation windows
    /// or region overrides) that needs the engine's delivery-path overlay.
    pub fn has_loss_elements(&self) -> bool {
        !self.degradations.is_empty() || !self.region_overrides.is_empty()
    }

    /// Expands the plan against a topology into the concrete crash/recovery
    /// timeline. Deterministic: sampling uses only `self.seed`.
    pub fn materialize(&self, topology: &Topology) -> FaultSchedule {
        let mut crashes = self.crashes.clone();
        if let Some(rc) = self.random_crashes {
            let n = topology.node_count();
            let eligible = n.saturating_sub(1); // never sample the base station
            let count =
                ((rc.fraction.clamp(0.0, 1.0) * eligible as f64).round() as usize).min(eligible);
            let mut state = self.seed;
            // Partial Fisher–Yates over node ids 1..n.
            let mut ids: Vec<u16> = (1..n as u16).collect();
            let span = rc.until_ms.saturating_sub(rc.from_ms).max(1);
            for k in 0..count {
                let j = k + (splitmix(&mut state) as usize) % (eligible - k);
                ids.swap(k, j);
                let at_ms = rc.from_ms + splitmix(&mut state) % span;
                crashes.push(CrashEvent {
                    node: NodeId(ids[k]),
                    at_ms,
                    recover_at_ms: rc.outage_ms.map(|o| at_ms + o),
                });
            }
        }
        crashes.sort_by_key(|c| (c.at_ms, c.node));
        FaultSchedule { crashes }
    }

    pub(crate) fn overlay(&self, topology: &Topology) -> Option<FaultOverlay> {
        if !self.has_loss_elements() {
            return None;
        }
        let regions = self
            .region_overrides
            .iter()
            .map(|r| {
                let members = topology
                    .nodes()
                    .map(|id| {
                        let p = topology.position(id);
                        r.contains_position(p.x, p.y)
                    })
                    .collect();
                (*r, members)
            })
            .collect();
        Some(FaultOverlay {
            degradations: self.degradations.clone(),
            regions,
        })
    }
}

/// The concrete crash/recovery timeline a [`FaultPlan`] expands to over a
/// topology: scripted crashes verbatim plus the sampled population, sorted
/// by time. This is also the ground truth for completeness accounting —
/// [`FaultSchedule::alive_at`] says which nodes a given epoch could ever
/// have heard from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    crashes: Vec<CrashEvent>,
}

impl FaultSchedule {
    /// The crash timeline, sorted by `(at_ms, node)`.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// Whether `node` is up at time `t_ms` under this schedule (ignoring
    /// lost state after a reboot — "up" means powered, not caught up).
    pub fn alive_at(&self, node: NodeId, t_ms: u64) -> bool {
        // Later entries win, so overlapping scripts resolve by timeline order.
        let mut alive = true;
        for c in &self.crashes {
            if c.node != node || c.at_ms > t_ms {
                continue;
            }
            alive = match c.recover_at_ms {
                Some(r) => r <= t_ms,
                None => false,
            };
        }
        alive
    }

    /// Nodes that ever crash under this schedule.
    pub fn ever_crashed(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.crashes.iter().map(|c| c.node).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The engine-side view of a plan's loss elements, precomputed so the
/// delivery hot path does arithmetic only: window checks are integer
/// compares, region membership is a per-node boolean lookup.
#[derive(Debug)]
pub(crate) struct FaultOverlay {
    degradations: Vec<LinkDegradation>,
    regions: Vec<(RegionLossOverride, Vec<bool>)>,
}

impl FaultOverlay {
    /// Combines the radio's own loss probability with every active fault
    /// element for `receiver` at `now_us`.
    pub(crate) fn loss_prob(&self, base: f64, receiver: usize, now_us: u64) -> f64 {
        let mut p = base;
        for d in &self.degradations {
            if d.contains(now_us) {
                p = 1.0 - (1.0 - p) * (1.0 - d.added_loss);
            }
        }
        for (r, members) in &self.regions {
            if members[receiver] && r.contains_time(now_us) {
                p = p.max(r.loss_rate);
            }
        }
        p.clamp(0.0, 1.0)
    }
}

/// The same splitmix64 step the engine uses, duplicated so plan sampling
/// never touches (or depends on) the simulation RNG stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for FaultSchedule {
    fn write(&self, w: &mut SnapWriter) {
        let FaultSchedule { crashes } = self;
        crashes.write(w);
    }
}

impl Restorable for FaultSchedule {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultSchedule {
            crashes: Vec::read(r)?,
        })
    }
}

impl Snapshot for FaultOverlay {
    // The region membership vectors are serialized rather than rebuilt from
    // the topology: `loss_prob` is pure, so the vectors fully determine the
    // overlay's behaviour without re-running the (position-dependent) build.
    fn write(&self, w: &mut SnapWriter) {
        let FaultOverlay {
            degradations,
            regions,
        } = self;
        degradations.write(w);
        regions.write(w);
    }
}

impl Restorable for FaultOverlay {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultOverlay {
            degradations: Vec::read(r)?,
            regions: Vec::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.has_loss_elements());
        let topo = Topology::grid(4).unwrap();
        assert!(plan.materialize(&topo).crashes().is_empty());
        assert!(plan.overlay(&topo).is_none());
    }

    #[test]
    fn scripted_crashes_materialize_verbatim_and_sorted() {
        let topo = Topology::grid(4).unwrap();
        let plan = FaultPlan::scripted(vec![
            (NodeId(7), 20_000, None),
            (NodeId(3), 10_000, Some(30_000)),
        ]);
        let s = plan.materialize(&topo);
        assert_eq!(s.crashes().len(), 2);
        assert_eq!(s.crashes()[0].node, NodeId(3)); // sorted by time
        assert!(s.alive_at(NodeId(3), 9_999));
        assert!(!s.alive_at(NodeId(3), 10_000));
        assert!(s.alive_at(NodeId(3), 30_000)); // rebooted
        assert!(!s.alive_at(NodeId(7), 25_000)); // stays dead
        assert_eq!(s.ever_crashed(), vec![NodeId(3), NodeId(7)]);
    }

    #[test]
    fn sampling_is_deterministic_and_never_kills_the_base_station() {
        let topo = Topology::grid(8).unwrap();
        let plan = FaultPlan::sampled(42, 0.25, 5_000, 50_000);
        let a = plan.materialize(&topo);
        let b = plan.materialize(&topo);
        assert_eq!(a, b);
        // 25% of 63 eligible nodes ≈ 16 victims.
        assert_eq!(a.crashes().len(), 16);
        for c in a.crashes() {
            assert_ne!(c.node, NodeId::BASE_STATION);
            assert!((5_000..55_000).contains(&c.at_ms));
            assert_eq!(c.recover_at_ms, None);
        }
        // Victims are distinct (sampling without replacement).
        assert_eq!(a.ever_crashed().len(), 16);
        // A different seed picks a different timeline.
        let other = FaultPlan::sampled(43, 0.25, 5_000, 50_000).materialize(&topo);
        assert_ne!(a, other);
    }

    #[test]
    fn sampled_outage_schedules_recovery() {
        let topo = Topology::grid(4).unwrap();
        let plan = FaultPlan {
            seed: 7,
            random_crashes: Some(RandomCrashes {
                fraction: 0.5,
                from_ms: 1_000,
                until_ms: 2_000,
                outage_ms: Some(10_000),
            }),
            ..FaultPlan::default()
        };
        let s = plan.materialize(&topo);
        assert!(!s.crashes().is_empty());
        for c in s.crashes() {
            assert_eq!(c.recover_at_ms, Some(c.at_ms + 10_000));
            assert!(s.alive_at(c.node, c.at_ms + 10_000));
        }
    }

    #[test]
    fn degradation_window_compounds_loss_independently() {
        let topo = Topology::grid(4).unwrap();
        let plan = FaultPlan {
            degradations: vec![LinkDegradation {
                from_ms: 10,
                until_ms: 20,
                added_loss: 0.5,
            }],
            ..FaultPlan::default()
        };
        let o = plan.overlay(&topo).unwrap();
        // Outside the window: base untouched.
        assert_eq!(o.loss_prob(0.2, 0, 9_999), 0.2);
        assert_eq!(o.loss_prob(0.2, 0, 20_000), 0.2);
        // Inside: 1 − (1−0.2)(1−0.5) = 0.6.
        assert!((o.loss_prob(0.2, 0, 15_000) - 0.6).abs() < 1e-12);
        // Open-ended windows stay active.
        let open = FaultPlan {
            degradations: vec![LinkDegradation {
                from_ms: 0,
                until_ms: u64::MAX,
                added_loss: 1.0,
            }],
            ..FaultPlan::default()
        };
        let o = open.overlay(&topo).unwrap();
        assert_eq!(o.loss_prob(0.0, 0, u64::MAX - 1), 1.0);
    }

    #[test]
    fn region_override_applies_to_members_only() {
        let topo = Topology::grid(4).unwrap(); // 20 ft spacing
        let plan = FaultPlan {
            region_overrides: vec![RegionLossOverride {
                x0: -1.0,
                y0: -1.0,
                x1: 25.0,
                y1: 25.0, // covers nodes 0, 1, 4, 5
                from_ms: 0,
                until_ms: u64::MAX,
                loss_rate: 0.9,
            }],
            ..FaultPlan::default()
        };
        let o = plan.overlay(&topo).unwrap();
        assert_eq!(o.loss_prob(0.0, NodeId(5).index(), 1_000), 0.9);
        // A floor, not a multiplier: a higher base survives.
        assert_eq!(o.loss_prob(0.95, NodeId(5).index(), 1_000), 0.95);
        // Node 15 at (60, 60) is outside the region.
        assert_eq!(o.loss_prob(0.0, NodeId(15).index(), 1_000), 0.0);
    }
}
