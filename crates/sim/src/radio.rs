//! Radio model: message kinds, destinations and transmission cost parameters.

use crate::topology::NodeId;
use std::fmt;

/// Categories of radio traffic, matching the paper's accounting: "radio
/// messages consist of query result transmission messages, query propagation
/// and abortion messages, and periodical network maintenance messages".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// Query result (rows or partial aggregates) flowing toward the base
    /// station.
    Result,
    /// Query dissemination flooding away from the base station.
    QueryPropagation,
    /// Query abortion notice flooding away from the base station.
    QueryAbort,
    /// Periodic network maintenance beacon.
    Maintenance,
    /// A sleeping node's wake-up announcement (§3.2.2).
    Wakeup,
}

impl MsgKind {
    /// All kinds, in canonical order.
    pub const ALL: [MsgKind; 5] = [
        MsgKind::Result,
        MsgKind::QueryPropagation,
        MsgKind::QueryAbort,
        MsgKind::Maintenance,
        MsgKind::Wakeup,
    ];
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::Result => "result",
            MsgKind::QueryPropagation => "query-propagation",
            MsgKind::QueryAbort => "query-abort",
            MsgKind::Maintenance => "maintenance",
            MsgKind::Wakeup => "wakeup",
        };
        f.write_str(s)
    }
}

/// Intended recipients of a transmission.
///
/// Every transmission is physically a broadcast; the destination selects who
/// *processes* the frame. The TTMQO in-network tier exploits this by
/// multicasting one result frame to several chosen parents (§3.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Destination {
    /// All in-range neighbours process the frame.
    Broadcast,
    /// Exactly one neighbour processes the frame (retransmitted on loss).
    Unicast(NodeId),
    /// A chosen set of neighbours process the frame.
    Multicast(Vec<NodeId>),
}

impl Destination {
    /// Whether `node` is an intended recipient (given it is in radio range).
    pub fn includes(&self, node: NodeId) -> bool {
        match self {
            Destination::Broadcast => true,
            Destination::Unicast(d) => *d == node,
            Destination::Multicast(ds) => ds.contains(&node),
        }
    }
}

/// Radio cost and reliability parameters.
///
/// The transmission cost of a frame is `startup_ms + per_byte_ms · bytes`
/// (the paper's `C_start + C_trans · len`). Defaults model a CC1000-class
/// 38.4 kbps mote radio: ~0.2 ms/byte and a 4 ms startup (preamble + MAC).
///
/// # Examples
///
/// ```
/// use ttmqo_sim::RadioParams;
///
/// let r = RadioParams::default();
/// assert!(r.tx_time_ms(36) > r.startup_ms);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadioParams {
    /// Fixed per-transmission startup cost, ms (`C_start`).
    pub startup_ms: f64,
    /// Per-byte transmission cost, ms (`C_trans`).
    pub per_byte_ms: f64,
    /// Frame header bytes charged on every transmission (source, destination
    /// bitmap, kind, CRC).
    pub header_bytes: usize,
    /// Independent per-receiver probability of losing a frame, in `[0, 1]`.
    /// The paper's experiments assume a lossless environment (0.0).
    pub loss_rate: f64,
    /// Whether reception degrades with distance: the per-receiver loss
    /// probability becomes `loss_rate + (1 - loss_rate) · (d / range)⁴`,
    /// approximating the sharp packet-reception falloff of real motes near
    /// the edge of their range.
    pub distance_loss: bool,
    /// Whether two frames overlapping in time at a common receiver corrupt
    /// each other there (packet-level collision model).
    pub collisions: bool,
    /// Maximum retransmissions of a unicast frame after loss or collision.
    pub max_retries: u32,
    /// Carrier-sense deferral budget per transmission attempt. Each deferral
    /// jumps the sender's start time past one audible frame; past the budget
    /// the sender gives up sensing and transmits anyway, accepting a
    /// possible collision — the give-up real CSMA backoff performs. Bounds
    /// the sensing loop under pathological backlogs of queued future frames.
    pub csma_max_deferrals: u32,
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams {
            startup_ms: 4.0,
            per_byte_ms: 0.2,
            header_bytes: 7,
            loss_rate: 0.0,
            distance_loss: false,
            collisions: true,
            max_retries: 3,
            csma_max_deferrals: 32,
        }
    }
}

impl RadioParams {
    /// Lossless, collision-free radio — the paper's stated assumption for the
    /// cost model itself.
    pub fn lossless() -> Self {
        RadioParams {
            loss_rate: 0.0,
            distance_loss: false,
            collisions: false,
            ..Self::default()
        }
    }

    /// Effective per-receiver loss probability at distance `d` for a radio
    /// with range `range`.
    pub fn loss_at(&self, d: f64, range: f64) -> f64 {
        if !self.distance_loss {
            return self.loss_rate;
        }
        let frac = (d / range).clamp(0.0, 1.0).powi(4);
        (self.loss_rate + (1.0 - self.loss_rate) * frac).min(1.0)
    }

    /// Time to push a frame with `payload_bytes` of payload onto the air, ms.
    pub fn tx_time_ms(&self, payload_bytes: usize) -> f64 {
        self.startup_ms + self.per_byte_ms * (self.header_bytes + payload_bytes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_includes() {
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        assert!(Destination::Broadcast.includes(n1));
        assert!(Destination::Unicast(n1).includes(n1));
        assert!(!Destination::Unicast(n1).includes(n2));
        let m = Destination::Multicast(vec![n1, n2]);
        assert!(m.includes(n1) && m.includes(n2));
        assert!(!m.includes(NodeId(3)));
    }

    #[test]
    fn tx_time_is_affine_in_length() {
        let r = RadioParams::default();
        let t0 = r.tx_time_ms(0);
        let t10 = r.tx_time_ms(10);
        let t20 = r.tx_time_ms(20);
        assert!((t20 - t10 - (t10 - t0)).abs() < 1e-12);
        assert_eq!(t0, 4.0 + 0.2 * 7.0);
    }

    #[test]
    fn lossless_disables_failures() {
        let r = RadioParams::lossless();
        assert_eq!(r.loss_rate, 0.0);
        assert!(!r.collisions);
    }

    #[test]
    fn loss_at_matches_quartic_falloff_formula() {
        let r = RadioParams {
            loss_rate: 0.2,
            distance_loss: true,
            ..RadioParams::default()
        };
        // loss_rate + (1 − loss_rate)·(d/range)⁴ at a few exact points.
        assert_eq!(r.loss_at(0.0, 50.0), 0.2);
        assert!((r.loss_at(25.0, 50.0) - (0.2 + 0.8 * 0.0625)).abs() < 1e-12);
        assert!((r.loss_at(50.0, 50.0) - 1.0).abs() < 1e-12);
        // Beyond range the ratio clamps to 1 → certain loss, never > 1.
        assert_eq!(r.loss_at(80.0, 50.0), 1.0);
        // A pure distance model (no base loss) keeps the quartic shape.
        let pure = RadioParams {
            loss_rate: 0.0,
            distance_loss: true,
            ..RadioParams::default()
        };
        assert_eq!(pure.loss_at(0.0, 50.0), 0.0);
        assert!((pure.loss_at(40.0, 50.0) - 0.8f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn loss_at_without_distance_model_is_flat() {
        let r = RadioParams {
            loss_rate: 0.3,
            distance_loss: false,
            ..RadioParams::default()
        };
        assert_eq!(r.loss_at(0.0, 50.0), 0.3);
        assert_eq!(r.loss_at(49.0, 50.0), 0.3);
    }

    #[test]
    fn msg_kind_display_is_distinct() {
        let names: Vec<String> = MsgKind::ALL.iter().map(|k| k.to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
