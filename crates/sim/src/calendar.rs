//! A calendar queue: the engine's event priority queue for big-grid runs.
//!
//! A discrete-event simulator at 64×64 scale keeps thousands of pending
//! events (one timer per node plus every in-flight frame's delivery). A
//! binary heap pays `O(log n)` pointer-chasing comparisons per operation
//! over an array too large for cache; a calendar queue ([Brown 1988],
//! "Calendar Queues: A Fast O(1) Priority Queue Implementation for the
//! Simulation Event Set Problem") buckets events by time slot — like a desk
//! calendar with one page per day — making push and pop amortized `O(1)`
//! with almost all touches landing in one small bucket.
//!
//! # Determinism contract
//!
//! [`CalendarQueue::pop`] returns entries in strictly increasing
//! `(time, seq)` order — **exactly** the order
//! `BinaryHeap<Reverse<(time, seq, ..)>>` pops them in, since `(time, seq)`
//! is a total order (`seq` is unique). The engine's golden determinism
//! snapshots and a property test against a live `BinaryHeap`
//! (`crates/sim/tests/calendar_order.rs`) pin this equivalence, including
//! same-time ties and pushes interleaved with pops. Bucket count and width
//! adapt to the queue's content, but only pop *cost* depends on the layout —
//! never pop *order* — and nothing here draws randomness.
//!
//! # Structure
//!
//! * Each bucket holds the events of time slots congruent modulo the bucket
//!   count (`bucket = (time / width) % n_buckets`), sorted descending so the
//!   bucket's earliest event is at the back (`Vec::pop` position).
//! * Pop scans slots from the *floor* (the last popped time, a lower bound
//!   on the minimum) forward; the first bucket whose back entry belongs to
//!   the slot under examination holds the global minimum. A full fruitless
//!   cycle (every pending event is more than one calendar year ahead) falls
//!   back to a direct min scan over bucket backs and jumps the floor there.
//! * The bucket array doubles when occupancy crowds buckets and halves when
//!   it thins, re-deriving the slot width from the live events' average
//!   spacing, so bucket scans stay `O(1)` across workload shifts.

use std::fmt;

/// One pending entry: a totally ordered `(time, seq)` key plus the payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

/// A monotone-ish priority queue over `(time, seq)` keys (see the module
/// docs for the structure and the determinism contract).
///
/// `seq` values must be unique (the engine's event sequence counter); equal
/// `(time, seq)` pairs would make pop order ill-defined.
///
/// # Examples
///
/// ```
/// use ttmqo_sim::CalendarQueue;
///
/// let mut q = CalendarQueue::new();
/// q.push(2000, 1, "late");
/// q.push(1000, 2, "early");
/// q.push(1000, 3, "early-tie");
/// assert_eq!(q.peek(), Some((1000, 2)));
/// assert_eq!(q.pop(), Some((1000, 2, "early")));
/// assert_eq!(q.pop(), Some((1000, 3, "early-tie")));
/// assert_eq!(q.pop(), Some((2000, 1, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone)]
pub struct CalendarQueue<T> {
    /// Buckets sorted descending by `(time, seq)`: the bucket minimum is at
    /// the back, one `Vec::pop` away.
    buckets: Vec<Vec<Entry<T>>>,
    /// Power-of-two bucket-count mask (`buckets.len() - 1`).
    mask: usize,
    /// log2 of the slot width in time units.
    width_shift: u32,
    /// Total entries across all buckets.
    len: usize,
    /// Lower bound on the minimum pending key's time: the last popped time,
    /// lowered if an earlier event is pushed (the engine never does, but
    /// correctness must not depend on that).
    floor: u64,
    /// Bucket index of the located minimum, valid until the next push/pop
    /// (lets `peek` + `pop` share one slot scan).
    cached_min: Option<usize>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width", &(1u64 << self.width_shift))
            .field("floor", &self.floor)
            .finish()
    }
}

/// Smallest bucket count kept through shrinks.
const MIN_BUCKETS: usize = 16;
/// Grow when average occupancy exceeds this many entries per bucket.
const GROW_AT: usize = 2;
/// Initial slot width: 2¹⁰ time units (≈1 ms at the engine's µs clock).
const INITIAL_WIDTH_SHIFT: u32 = 10;

impl<T> CalendarQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width_shift: INITIAL_WIDTH_SHIFT,
            len: 0,
            floor: 0,
            cached_min: None,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. `seq` must be unique across pending entries.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        if self.len >= self.buckets.len() * GROW_AT {
            self.resize(self.buckets.len() * 2);
        }
        // A push below the floor (never from the engine, whose pushes are at
        // or after the current event) must lower it, or the slot scan could
        // start past the new minimum and pop a later event first.
        if time < self.floor {
            self.floor = time;
        }
        if let Some(b) = self.cached_min {
            let back = self.buckets[b].last().expect("cached bucket non-empty");
            if (time, seq) < (back.time, back.seq) {
                self.cached_min = None;
            }
        }
        let idx = self.bucket_of(time);
        let bucket = &mut self.buckets[idx];
        // Descending order: find the position from the back (sorted-insert
        // cost is bounded by the bucket's occupancy, ~GROW_AT entries).
        let pos = bucket.partition_point(|e| (e.time, e.seq) > (time, seq));
        bucket.insert(pos, Entry { time, seq, item });
        self.len += 1;
    }

    /// The minimum pending `(time, seq)` key, without removing it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        let b = self.locate_min()?;
        let e = self.buckets[b].last().expect("located bucket non-empty");
        Some((e.time, e.seq))
    }

    /// Removes and returns the minimum entry as `(time, seq, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let b = self.locate_min()?;
        let e = self.buckets[b].pop().expect("located bucket non-empty");
        self.len -= 1;
        self.floor = e.time;
        self.cached_min = None;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some((e.time, e.seq, e.item))
    }

    fn bucket_of(&self, time: u64) -> usize {
        ((time >> self.width_shift) as usize) & self.mask
    }

    /// Finds the bucket holding the global minimum (see module docs for the
    /// one-bucket-per-slot argument) and caches it for the following `pop`.
    fn locate_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if let Some(b) = self.cached_min {
            return Some(b);
        }
        let n = self.buckets.len();
        let first_slot = self.floor >> self.width_shift;
        for slot in first_slot..first_slot + n as u64 {
            let b = (slot as usize) & self.mask;
            if let Some(e) = self.buckets[b].last() {
                if e.time >> self.width_shift == slot {
                    self.cached_min = Some(b);
                    return Some(b);
                }
            }
        }
        // Every pending event is at least a full calendar year past the
        // floor: direct min scan over the bucket minima.
        let mut best: Option<(u64, u64, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(e) = bucket.last() {
                if best.is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, b));
                }
            }
        }
        let (time, _, b) = best.expect("len > 0 means some bucket is non-empty");
        // Jump the floor so the next scan starts at the minimum's slot.
        self.floor = time;
        self.cached_min = Some(b);
        Some(b)
    }

    /// Rebuilds with `new_count` buckets, re-deriving the slot width from
    /// the live events' average spacing so a bucket keeps `O(1)` entries per
    /// slot whatever the event density. Layout only — pop order is
    /// unaffected (the determinism contract).
    fn resize(&mut self, new_count: usize) {
        let new_count = new_count.max(MIN_BUCKETS);
        let entries: Vec<Entry<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        // Width target: the average inter-event gap, so one slot holds ~1
        // event. Clamped to [2⁰, 2²⁰] (µs..seconds at the engine's clock) to
        // stay sane under degenerate spacings.
        if !entries.is_empty() {
            let lo = entries.iter().map(|e| e.time).min().expect("non-empty");
            let hi = entries.iter().map(|e| e.time).max().expect("non-empty");
            let gap = ((hi - lo) / entries.len() as u64).max(1);
            self.width_shift = (63 - gap.leading_zeros()).clamp(0, 20);
        }
        self.buckets = (0..new_count).map(|_| Vec::new()).collect();
        self.mask = new_count - 1;
        self.cached_min = None;
        self.len = 0;
        let floor = self.floor;
        for e in entries {
            self.push(e.time, e.seq, e.item);
        }
        self.floor = floor;
    }
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl<T: Snapshot> Snapshot for CalendarQueue<T> {
    // Serializes pending entries in pop order — ascending `(time, seq)` — so
    // the bytes are independent of the current bucket layout, which the
    // determinism contract above makes unobservable anyway. The skipped
    // fields are all derived: `mask` from the bucket count, `floor` and
    // `cached_min` re-established by subsequent pops, `width_shift` pure
    // performance state.
    fn write(&self, w: &mut SnapWriter) {
        let CalendarQueue {
            buckets,
            mask: _,
            width_shift: _,
            len,
            floor: _,
            cached_min: _,
        } = self;
        w.put_usize(*len);
        let mut entries: Vec<&Entry<T>> = buckets.iter().flatten().collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        for e in entries {
            w.put_u64(e.time);
            w.put_u64(e.seq);
            e.item.write(w);
        }
    }
}

impl<T: Restorable> Restorable for CalendarQueue<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut q = CalendarQueue::new();
        for _ in 0..n {
            let time = r.u64()?;
            let seq = r.u64()?;
            q.push(time, seq, T::read(r)?);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(30, 1, 'a');
        q.push(10, 2, 'b');
        q.push(10, 3, 'c');
        q.push(20, 4, 'd');
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![(10, 2, 'b'), (10, 3, 'c'), (20, 4, 'd'), (30, 1, 'a')]
        );
    }

    #[test]
    fn peek_matches_pop_and_survives_pushes() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek(), None);
        q.push(500, 1, ());
        assert_eq!(q.peek(), Some((500, 1)));
        q.push(100, 2, ());
        assert_eq!(q.peek(), Some((100, 2)), "smaller push invalidates cache");
        q.push(900, 3, ());
        assert_eq!(q.peek(), Some((100, 2)));
        assert_eq!(q.pop(), Some((100, 2, ())));
        assert_eq!(q.peek(), Some((500, 1)));
    }

    #[test]
    fn far_future_events_are_found_via_the_direct_scan() {
        let mut q = CalendarQueue::new();
        // Far beyond one calendar year of the initial 16×1024-unit cycle.
        q.push(30_000_000, 1, "maintenance");
        q.push(60_000_000, 2, "later");
        assert_eq!(q.pop(), Some((30_000_000, 1, "maintenance")));
        assert_eq!(q.pop(), Some((60_000_000, 2, "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn growth_and_shrink_keep_order() {
        let mut q = CalendarQueue::new();
        // Push enough to force several doublings (deterministic scatter).
        let mut expected = Vec::new();
        for seq in 0..1000u64 {
            let time = (seq * 7919) % 100_000;
            q.push(time, seq, seq);
            expected.push((time, seq));
        }
        expected.sort_unstable();
        // Drain fully (forcing shrinks on the way down).
        let drained: Vec<_> = std::iter::from_fn(|| q.pop().map(|(t, s, _)| (t, s))).collect();
        assert_eq!(drained, expected);
        assert!(q.is_empty());
    }

    #[test]
    fn push_below_floor_still_pops_first() {
        let mut q = CalendarQueue::new();
        q.push(10_000, 1, ());
        assert_eq!(q.pop(), Some((10_000, 1, ())));
        // The engine never pushes into the past; the queue must survive it
        // anyway rather than silently reorder.
        q.push(5_000, 2, ());
        q.push(20_000, 3, ());
        assert_eq!(q.pop(), Some((5_000, 2, ())));
        assert_eq!(q.pop(), Some((20_000, 3, ())));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        for seq in 0..100 {
            q.push(seq * 10, seq, ());
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop();
        }
        assert_eq!(q.len(), 60);
    }
}
