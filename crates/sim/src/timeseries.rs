//! Windowed per-node time-series metrics.
//!
//! The paper's headline metric — *average* transmission time over nodes
//! (§4.1) — is a network-wide mean over the whole run. It hides exactly what
//! TTMQO's DAG routing and sleep modes are supposed to fix: the energy
//! hotspot around the base station and load imbalance across branches. This
//! module resolves the aggregate [`Metrics`](crate::Metrics) in two extra
//! dimensions:
//!
//! * **time** — counters are bucketed into fixed windows (default one base
//!   epoch, 2048 ms), so convergence after a fault and epoch-phase structure
//!   become visible;
//! * **space** — every window carries per-node vectors (tx/rx busy, sleep,
//!   samples, energy), plus derived imbalance statistics (max/mean ratio and
//!   the [`gini`] coefficient over per-node transmit time).
//!
//! # Reconciliation invariant
//!
//! The engine mirrors *the same deltas* into the [`WindowRecorder`] that it
//! feeds the aggregate `Metrics`, bucketed by event time. Summing any counter
//! over all windows therefore reproduces the aggregate total exactly
//! (integer counters) or up to f64 re-association (time sums). Two
//! consequences are deliberate:
//!
//! * a nap is credited in full to the window in which it was *planned* and
//!   retracted (negative delta) in the window of an early wake, re-plan or
//!   crash — so one window's sleep can exceed the window length or dip
//!   negative while the series total stays exact;
//! * per-window energy uses the *unclamped* idle time
//!   `len − (tx + rx + sleep)`, so window energies telescope to
//!   [`Metrics::total_energy_mj`](crate::Metrics::total_energy_mj) whenever
//!   the aggregate accounting itself does not clamp.
//!
//! Recording never allocates on a per-event basis beyond amortized window
//! growth, and never draws from the simulation RNG, so enabling the recorder
//! leaves runs bit-for-bit identical — the same contract
//! [`TraceHandle`](crate::TraceHandle) keeps.

use crate::energy::EnergyProfile;
use crate::radio::MsgKind;
use crate::time::SimTime;
use crate::trace::SCHEMA_VERSION;
use std::collections::BTreeMap;
use ttmqo_query::BASE_EPOCH_MS;

/// Configuration for windowed time-series collection.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeseriesConfig {
    /// Window length, ms (default: one base epoch, 2048 ms).
    pub window_ms: u64,
    /// Power profile used for per-window energy accounting.
    pub energy: EnergyProfile,
}

impl Default for TimeseriesConfig {
    fn default() -> Self {
        TimeseriesConfig {
            window_ms: BASE_EPOCH_MS,
            energy: EnergyProfile::default(),
        }
    }
}

/// Per-window accumulator, one slot per elapsed window.
#[derive(Debug, Clone)]
struct WindowAccum {
    tx_busy_ms: Vec<f64>,
    rx_busy_ms: Vec<f64>,
    sleep_ms: Vec<f64>,
    samples: Vec<u64>,
    tx_frames: Vec<u64>,
    tx_count: BTreeMap<MsgKind, u64>,
    collisions: u64,
    retransmissions: u64,
    losses: u64,
    gave_up: u64,
}

impl WindowAccum {
    fn new(nodes: usize) -> Self {
        WindowAccum {
            tx_busy_ms: vec![0.0; nodes],
            rx_busy_ms: vec![0.0; nodes],
            sleep_ms: vec![0.0; nodes],
            samples: vec![0; nodes],
            tx_frames: vec![0; nodes],
            tx_count: BTreeMap::new(),
            collisions: 0,
            retransmissions: 0,
            losses: 0,
            gave_up: 0,
        }
    }
}

/// Live collector the engine mirrors its metric deltas into, bucketed by
/// event time. Install with `Simulator::set_timeseries`; retrieve the
/// finished series with `Simulator::take_timeseries` and [`Self::finalize`].
#[derive(Debug, Clone)]
pub struct WindowRecorder {
    window_us: u64,
    nodes: usize,
    energy: EnergyProfile,
    windows: Vec<WindowAccum>,
}

impl WindowRecorder {
    /// A recorder for `nodes` nodes under the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.window_ms` is zero.
    pub fn new(nodes: usize, config: &TimeseriesConfig) -> Self {
        assert!(config.window_ms > 0, "window length must be positive");
        WindowRecorder {
            window_us: config.window_ms * 1000,
            nodes,
            energy: config.energy,
            windows: Vec::new(),
        }
    }

    /// Window length, ms.
    pub fn window_ms(&self) -> u64 {
        self.window_us / 1000
    }

    fn slot(&mut self, time_us: u64) -> &mut WindowAccum {
        let idx = (time_us / self.window_us) as usize;
        while self.windows.len() <= idx {
            self.windows.push(WindowAccum::new(self.nodes));
        }
        &mut self.windows[idx]
    }

    /// Mirrors `Metrics::record_tx` (airtime only; bytes are not windowed).
    pub fn record_tx(&mut self, time_us: u64, node: usize, kind: MsgKind, busy_ms: f64) {
        let w = self.slot(time_us);
        w.tx_busy_ms[node] += busy_ms;
        w.tx_frames[node] += 1;
        *w.tx_count.entry(kind).or_insert(0) += 1;
    }

    /// Mirrors `Metrics::record_rx`.
    pub fn record_rx(&mut self, time_us: u64, node: usize, busy_ms: f64) {
        self.slot(time_us).rx_busy_ms[node] += busy_ms;
    }

    /// Mirrors `Metrics::record_sleep`: the full nap is credited to the
    /// planning window; retractions arrive as negative `ms`.
    pub fn record_sleep(&mut self, time_us: u64, node: usize, ms: f64) {
        self.slot(time_us).sleep_ms[node] += ms;
    }

    /// Mirrors `Metrics::record_sample`.
    pub fn record_sample(&mut self, time_us: u64, node: usize) {
        self.slot(time_us).samples[node] += 1;
    }

    /// Mirrors `Metrics::record_collision`.
    pub fn record_collision(&mut self, time_us: u64) {
        self.slot(time_us).collisions += 1;
    }

    /// Mirrors `Metrics::record_retransmission`.
    pub fn record_retransmission(&mut self, time_us: u64) {
        self.slot(time_us).retransmissions += 1;
    }

    /// Mirrors `Metrics::record_loss`.
    pub fn record_loss(&mut self, time_us: u64) {
        self.slot(time_us).losses += 1;
    }

    /// Mirrors `Metrics::record_gave_up`.
    pub fn record_gave_up(&mut self, time_us: u64) {
        self.slot(time_us).gave_up += 1;
    }

    /// Closes the series at `horizon` and derives per-window energy and
    /// imbalance statistics. Windows are padded out to the horizon so a
    /// quiet tail still appears (with idle-only energy); the last window is
    /// truncated at the horizon.
    pub fn finalize(mut self, horizon: SimTime) -> NodeTimeseries {
        let horizon_ms = horizon.as_ms();
        let window_ms = self.window_us / 1000;
        // Pad so that every ms up to the horizon is covered by a window.
        let covering = (horizon_ms.div_ceil(window_ms)).max(1) as usize;
        while self.windows.len() < covering {
            self.windows.push(WindowAccum::new(self.nodes));
        }
        let windows = self
            .windows
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let start_ms = i as u64 * window_ms;
                // Truncate at the horizon; windows past it have length 0 but
                // still carry their counters, so totals stay exact.
                let len_ms = (start_ms + window_ms).min(horizon_ms) - start_ms.min(horizon_ms);
                let energy_mj = (0..self.nodes)
                    .map(|n| {
                        // Unclamped idle keeps window energies telescoping to
                        // the aggregate total (see module docs).
                        let idle_ms =
                            len_ms as f64 - (w.tx_busy_ms[n] + w.rx_busy_ms[n] + w.sleep_ms[n]);
                        (self.energy.tx_mw * w.tx_busy_ms[n]
                            + self.energy.rx_mw * w.rx_busy_ms[n]
                            + self.energy.idle_mw * idle_ms
                            + self.energy.sleep_mw * w.sleep_ms[n])
                            / 1000.0
                            + self.energy.sample_uj * w.samples[n] as f64 / 1000.0
                    })
                    .collect();
                WindowStats {
                    start_ms,
                    len_ms,
                    tx_busy_ms: w.tx_busy_ms,
                    rx_busy_ms: w.rx_busy_ms,
                    sleep_ms: w.sleep_ms,
                    samples: w.samples,
                    tx_frames: w.tx_frames,
                    energy_mj,
                    tx_count: w.tx_count,
                    collisions: w.collisions,
                    retransmissions: w.retransmissions,
                    losses: w.losses,
                    gave_up: w.gave_up,
                }
            })
            .collect();
        NodeTimeseries {
            window_ms,
            nodes: self.nodes,
            horizon_ms,
            windows,
        }
    }
}

/// One finished window of the series: per-node vectors plus window-level
/// event counters, with derived imbalance accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window start, ms.
    pub start_ms: u64,
    /// Window length, ms — shorter than the configured window when truncated
    /// at the horizon, zero for windows entirely past it.
    pub len_ms: u64,
    /// Per-node transmit airtime in this window, ms.
    pub tx_busy_ms: Vec<f64>,
    /// Per-node receive airtime in this window, ms.
    pub rx_busy_ms: Vec<f64>,
    /// Per-node sleep time credited in this window, ms. Naps are credited in
    /// full at plan time and retracted on early wake/crash, so a single
    /// window may exceed its length or dip negative (the series total is
    /// exact).
    pub sleep_ms: Vec<f64>,
    /// Per-node sensor samples taken in this window.
    pub samples: Vec<u64>,
    /// Per-node frames transmitted in this window (all kinds).
    pub tx_frames: Vec<u64>,
    /// Per-node energy over this window, mJ (idle = remainder of the window,
    /// unclamped — see module docs).
    pub energy_mj: Vec<f64>,
    /// Transmissions by message kind in this window (network-wide).
    pub tx_count: BTreeMap<MsgKind, u64>,
    /// Frames corrupted by collisions in this window (per receiver).
    pub collisions: u64,
    /// Retransmissions triggered in this window.
    pub retransmissions: u64,
    /// Frames dropped by the loss model in this window (per receiver).
    pub losses: u64,
    /// Unicast frames abandoned in this window after exhausting retries.
    pub gave_up: u64,
}

impl WindowStats {
    /// Total transmit airtime across all nodes in this window, ms.
    pub fn total_tx_busy_ms(&self) -> f64 {
        self.tx_busy_ms.iter().sum()
    }

    /// Total energy across all nodes in this window, mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy_mj.iter().sum()
    }

    /// Load imbalance as max-over-mean of per-node transmit time: 1.0 means
    /// perfectly balanced, n means one node carries everything. Defined as
    /// 1.0 for a silent window (nothing transmitted is trivially balanced).
    pub fn max_mean_tx_ratio(&self) -> f64 {
        max_mean_ratio(&self.tx_busy_ms)
    }

    /// [`gini`] coefficient over per-node transmit time in this window.
    pub fn gini_tx_busy(&self) -> f64 {
        gini(&self.tx_busy_ms)
    }
}

/// The finished time series: one [`WindowStats`] per window from time zero
/// to the run horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTimeseries {
    /// Configured window length, ms.
    pub window_ms: u64,
    /// Number of nodes (length of every per-node vector).
    pub nodes: usize,
    /// Run horizon the series was finalized at, ms.
    pub horizon_ms: u64,
    /// The windows, in time order, covering `[0, horizon_ms]`.
    pub windows: Vec<WindowStats>,
}

impl NodeTimeseries {
    /// A node's transmit airtime summed over all windows, ms.
    pub fn node_total_tx_busy_ms(&self, node: usize) -> f64 {
        self.windows.iter().map(|w| w.tx_busy_ms[node]).sum()
    }

    /// A node's energy summed over all windows, mJ.
    pub fn node_total_energy_mj(&self, node: usize) -> f64 {
        self.windows.iter().map(|w| w.energy_mj[node]).sum()
    }

    /// Worst (maximum) per-window Gini coefficient over transmit time.
    pub fn peak_gini_tx_busy(&self) -> f64 {
        self.windows
            .iter()
            .map(WindowStats::gini_tx_busy)
            .fold(0.0, f64::max)
    }

    /// Deterministic JSON rendering of the whole series (single object, one
    /// `windows` array), used for the campaign's per-cell timeseries files.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.windows.len() * 256);
        out.push_str(&format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"window_ms\":{},\"nodes\":{},\"horizon_ms\":{},\"windows\":[",
            self.window_ms, self.nodes, self.horizon_ms
        ));
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start_ms\":{},\"len_ms\":{}",
                w.start_ms, w.len_ms
            ));
            f64_array(&mut out, "tx_busy_ms", &w.tx_busy_ms);
            f64_array(&mut out, "rx_busy_ms", &w.rx_busy_ms);
            f64_array(&mut out, "sleep_ms", &w.sleep_ms);
            f64_array(&mut out, "energy_mj", &w.energy_mj);
            u64_array(&mut out, "samples", &w.samples);
            u64_array(&mut out, "tx_frames", &w.tx_frames);
            out.push_str(",\"tx_count\":{");
            for (j, (kind, n)) in w.tx_count.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{kind}\":{n}"));
            }
            out.push('}');
            out.push_str(&format!(
                ",\"collisions\":{},\"retransmissions\":{},\"losses\":{},\"gave_up\":{}",
                w.collisions, w.retransmissions, w.losses, w.gave_up
            ));
            out.push_str(&format!(
                ",\"max_mean_tx_ratio\":{},\"gini_tx_busy\":{}}}",
                json_f64(w.max_mean_tx_ratio()),
                json_f64(w.gini_tx_busy())
            ));
        }
        out.push_str("]}");
        out
    }
}

fn f64_array(out: &mut String, key: &str, values: &[f64]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*v));
    }
    out.push(']');
}

fn u64_array(out: &mut String, key: &str, values: &[u64]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Max-over-mean ratio of a load vector: 1.0 for perfectly balanced (or
/// empty/all-zero) load, up to `n` when one element carries everything.
pub fn max_mean_ratio(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    if values.is_empty() || sum <= 0.0 {
        return 1.0;
    }
    let mean = sum / values.len() as f64;
    values.iter().fold(0.0_f64, |m, &v| m.max(v)) / mean
}

/// Gini coefficient of a non-negative load vector: 0.0 for perfectly equal
/// load (including all-zero and empty vectors), approaching 1.0 as the load
/// concentrates on a single element.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    let sum: f64 = values.iter().sum();
    if n == 0 || sum <= 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("load values are comparable"));
    // G = (2·Σᵢ i·xᵢ)/(n·Σx) − (n+1)/n with 1-based ranks over the sorted
    // values — the standard mean-absolute-difference form.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for WindowAccum {
    fn write(&self, w: &mut SnapWriter) {
        let WindowAccum {
            tx_busy_ms,
            rx_busy_ms,
            sleep_ms,
            samples,
            tx_frames,
            tx_count,
            collisions,
            retransmissions,
            losses,
            gave_up,
        } = self;
        tx_busy_ms.write(w);
        rx_busy_ms.write(w);
        sleep_ms.write(w);
        samples.write(w);
        tx_frames.write(w);
        tx_count.write(w);
        w.put_u64(*collisions);
        w.put_u64(*retransmissions);
        w.put_u64(*losses);
        w.put_u64(*gave_up);
    }
}

impl Restorable for WindowAccum {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(WindowAccum {
            tx_busy_ms: Vec::read(r)?,
            rx_busy_ms: Vec::read(r)?,
            sleep_ms: Vec::read(r)?,
            samples: Vec::read(r)?,
            tx_frames: Vec::read(r)?,
            tx_count: std::collections::BTreeMap::read(r)?,
            collisions: r.u64()?,
            retransmissions: r.u64()?,
            losses: r.u64()?,
            gave_up: r.u64()?,
        })
    }
}

impl Snapshot for WindowRecorder {
    fn write(&self, w: &mut SnapWriter) {
        let WindowRecorder {
            window_us,
            nodes,
            energy,
            windows,
        } = self;
        w.put_u64(*window_us);
        w.put_usize(*nodes);
        energy.write(w);
        windows.write(w);
    }
}

impl Restorable for WindowRecorder {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let window_us = r.u64()?;
        if window_us == 0 {
            return Err(SnapshotError::Corrupt(
                "zero-length timeseries window".into(),
            ));
        }
        Ok(WindowRecorder {
            window_us,
            nodes: r.usize()?,
            energy: EnergyProfile::read(r)?,
            windows: Vec::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window_ms: u64) -> TimeseriesConfig {
        TimeseriesConfig {
            window_ms,
            ..TimeseriesConfig::default()
        }
    }

    #[test]
    fn default_window_is_one_base_epoch() {
        assert_eq!(TimeseriesConfig::default().window_ms, 2048);
    }

    #[test]
    fn events_bucket_by_time() {
        let mut r = WindowRecorder::new(2, &config(1000));
        r.record_tx(0, 0, MsgKind::Result, 5.0);
        r.record_tx(999_999, 1, MsgKind::Result, 7.0);
        r.record_tx(1_000_000, 0, MsgKind::Maintenance, 11.0);
        r.record_collision(2_500_000);
        let ts = r.finalize(SimTime::from_ms(3000));
        assert_eq!(ts.windows.len(), 3);
        assert_eq!(ts.windows[0].tx_busy_ms, vec![5.0, 7.0]);
        assert_eq!(ts.windows[0].tx_frames, vec![1, 1]);
        assert_eq!(ts.windows[1].tx_busy_ms, vec![11.0, 0.0]);
        assert_eq!(ts.windows[1].tx_count[&MsgKind::Maintenance], 1);
        assert_eq!(ts.windows[2].collisions, 1);
        assert_eq!(ts.windows[2].tx_frames, vec![0, 0]);
    }

    #[test]
    fn finalize_pads_quiet_tail_and_truncates_last_window() {
        let r = WindowRecorder::new(1, &config(1000));
        let ts = r.finalize(SimTime::from_ms(2500));
        assert_eq!(ts.windows.len(), 3);
        assert_eq!(ts.windows[2].start_ms, 2000);
        assert_eq!(ts.windows[2].len_ms, 500);
        // An idle node burns idle power for exactly the window length.
        let p = EnergyProfile::default();
        assert!((ts.windows[2].energy_mj[0] - p.idle_mw * 500.0 / 1000.0).abs() < 1e-9);
        let total: f64 = (0..3).map(|w| ts.windows[w].energy_mj[0]).sum();
        assert!((total - p.idle_mw * 2500.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_retraction_can_leave_a_window_negative_but_totals_exact() {
        let mut r = WindowRecorder::new(1, &config(1000));
        // A 3 s nap planned in window 0; crash in window 2 retracts 1.5 s.
        r.record_sleep(100_000, 0, 3000.0);
        r.record_sleep(2_500_000, 0, -1500.0);
        let ts = r.finalize(SimTime::from_ms(3000));
        assert_eq!(ts.windows[0].sleep_ms[0], 3000.0);
        assert_eq!(ts.windows[2].sleep_ms[0], -1500.0);
        let total: f64 = ts.windows.iter().map(|w| w.sleep_ms[0]).sum();
        assert_eq!(total, 1500.0);
        // Energy still telescopes: total = idle(3000−1500) + sleep(1500).
        let p = EnergyProfile::default();
        let energy: f64 = ts.windows.iter().map(|w| w.energy_mj[0]).sum();
        let expect = (p.idle_mw * 1500.0 + p.sleep_mw * 1500.0) / 1000.0;
        assert!((energy - expect).abs() < 1e-9, "{energy} vs {expect}");
    }

    #[test]
    fn gini_known_values() {
        // Perfect equality.
        assert_eq!(gini(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        // All load on one of n elements → (n−1)/n.
        assert!((gini(&[0.0, 0.0, 0.0, 4.0]) - 0.75).abs() < 1e-12);
        // Order must not matter.
        assert!((gini(&[4.0, 0.0, 0.0, 0.0]) - 0.75).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // A known intermediate case: [1,2,3,4] → G = 0.25.
        assert!((gini(&[1.0, 2.0, 3.0, 4.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_mean_ratio_known_values() {
        assert_eq!(max_mean_ratio(&[2.0, 2.0]), 1.0);
        assert_eq!(max_mean_ratio(&[0.0, 4.0]), 2.0);
        assert_eq!(max_mean_ratio(&[]), 1.0);
        assert_eq!(max_mean_ratio(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn window_imbalance_accessors() {
        let mut r = WindowRecorder::new(4, &config(1000));
        r.record_tx(0, 3, MsgKind::Result, 4.0);
        let ts = r.finalize(SimTime::from_ms(1000));
        let w = &ts.windows[0];
        assert_eq!(w.max_mean_tx_ratio(), 4.0);
        assert!((w.gini_tx_busy() - 0.75).abs() < 1e-12);
        assert_eq!(ts.peak_gini_tx_busy(), w.gini_tx_busy());
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let mut r = WindowRecorder::new(2, &config(1000));
        r.record_tx(0, 0, MsgKind::Result, 5.0);
        r.record_rx(500_000, 1, 2.5);
        r.record_sample(600_000, 1);
        let ts = r.finalize(SimTime::from_ms(1000));
        let a = ts.to_json();
        let b = ts.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION}")));
        assert!(a.contains("\"tx_busy_ms\":[5,0]"));
        assert!(a.contains("\"samples\":[0,1]"));
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "balanced braces: {a}"
        );
    }
}
