//! Network topology: node placement, radio connectivity, levels.
//!
//! The paper deploys nodes "uniformly in an n×n two-dimensional grid, with the
//! base station node 0 at the upper left corner. The radio transmission radius
//! is set to be 50 feet, while the grid spacing is 20 feet." [`Topology::grid`]
//! reproduces exactly that; arbitrary placements are supported through
//! [`Topology::from_positions`].

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in the simulated network.
///
/// Node 0 is, by convention, the base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The base station's id.
    pub const BASE_STATION: NodeId = NodeId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A 2-D position in feet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate, feet.
    pub x: f64,
    /// Vertical coordinate, feet.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to another position, feet.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Error constructing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No nodes were given.
    Empty,
    /// More nodes than `NodeId` can address: the id space is `u16`, so a
    /// topology holds at most 65,536 nodes (node 65,537 and beyond have no
    /// id). A 256×256 grid is exactly the cap.
    TooManyNodes(usize),
    /// The radio range is not positive and finite.
    InvalidRange,
    /// Some node cannot reach the base station over any number of hops.
    Disconnected(u16),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => f.write_str("topology has no nodes"),
            TopologyError::TooManyNodes(n) => write!(f, "too many nodes: {n}"),
            TopologyError::InvalidRange => f.write_str("radio range must be positive and finite"),
            TopologyError::Disconnected(id) => {
                write!(f, "node n{id} cannot reach the base station")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable network layout: positions, radio range and derived
/// connectivity (neighbour lists and hop levels from the base station).
///
/// Holds at most 65,536 nodes (the `u16` id space; a 256×256 grid fits
/// exactly). Construction is near-linear in the node count for
/// bounded-density deployments: a spatial grid-bucket index
/// (`SpatialIndex`, cells of side `radio_range`) replaces the all-pairs
/// O(n²) scan, so only the 9 buckets a node's radio disc can overlap are
/// examined per node. The index is retained for ad-hoc disc queries
/// ([`Topology::nodes_within`]).
///
/// # Examples
///
/// ```
/// use ttmqo_sim::{Topology, NodeId};
///
/// // The paper's 4×4 deployment: 20 ft spacing, 50 ft radio range.
/// let topo = Topology::grid(4)?;
/// assert_eq!(topo.node_count(), 16);
/// assert_eq!(topo.level(NodeId(0)), 0);
/// assert!(topo.neighbors(NodeId(0)).len() >= 3);
/// # Ok::<(), ttmqo_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    levels: Vec<u32>,
    index: SpatialIndex,
}

/// Spatial grid-bucket index over node positions: square cells of side
/// `cell_ft` (the radio range), so any disc of that radius is covered by the
/// centre's cell plus its 8 neighbours. Build is O(n); a disc query touches
/// only the buckets the disc can overlap. Bucket contents are in ascending
/// id order (nodes are inserted in id order), which is what lets
/// [`Topology::from_positions`] reproduce the all-pairs scan's neighbour
/// lists byte for byte.
#[derive(Debug, Clone, Default)]
struct SpatialIndex {
    cell_ft: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
}

impl SpatialIndex {
    fn build(positions: &[Position], cell_ft: f64) -> Self {
        let mut cells: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            cells
                .entry(Self::cell_at(*p, cell_ft))
                .or_default()
                .push(NodeId(i as u16));
        }
        SpatialIndex { cell_ft, cells }
    }

    fn cell_at(p: Position, cell_ft: f64) -> (i64, i64) {
        (
            (p.x / cell_ft).floor() as i64,
            (p.y / cell_ft).floor() as i64,
        )
    }

    /// Calls `f` with every node in the buckets a disc of radius `radius`
    /// centred at `center` can overlap. Candidates only — callers filter by
    /// actual distance. Visit order is deterministic (row-major over the
    /// bucket window, ascending ids within a bucket) but not globally
    /// sorted.
    fn for_each_candidate(&self, center: Position, radius: f64, mut f: impl FnMut(NodeId)) {
        let (cx, cy) = Self::cell_at(center, self.cell_ft);
        // A disc of radius r reaches ceil(r / cell) cells in each direction.
        let reach = (radius / self.cell_ft).ceil().max(1.0) as i64;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &id in bucket {
                        f(id);
                    }
                }
            }
        }
    }
}

/// The paper's grid spacing, feet.
pub const GRID_SPACING_FT: f64 = 20.0;
/// The paper's radio transmission radius, feet.
pub const RADIO_RANGE_FT: f64 = 50.0;

impl Topology {
    /// The paper's uniform n×n grid: spacing 20 ft, radio range 50 ft, base
    /// station node 0 at the upper-left corner, row-major ids.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `n == 0` or the grid exceeds the id space.
    pub fn grid(n: usize) -> Result<Self, TopologyError> {
        Self::grid_with(n, GRID_SPACING_FT, RADIO_RANGE_FT)
    }

    /// An n×n grid with custom spacing and radio range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] on an empty grid, id-space overflow, invalid
    /// range, or a spacing so large the grid is disconnected.
    pub fn grid_with(n: usize, spacing: f64, range: f64) -> Result<Self, TopologyError> {
        let positions: Vec<Position> = (0..n * n)
            .map(|i| Position {
                x: (i % n) as f64 * spacing,
                y: (i / n) as f64 * spacing,
            })
            .collect();
        Self::from_positions(positions, range)
    }

    /// A random uniform deployment: `n` nodes dropped uniformly over an
    /// `extent × extent` square (the base station pinned at the origin
    /// corner), retrying deterministically until the deployment is connected
    /// under the given radio range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `n == 0`, the range is invalid, or no
    /// connected deployment is found within 64 deterministic retries
    /// (the density is too low for the range).
    pub fn random_uniform(
        n: usize,
        extent: f64,
        range: f64,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut last_err = TopologyError::Disconnected(0);
        for _ in 0..64 {
            let mut positions = vec![Position { x: 0.0, y: 0.0 }];
            positions.extend((1..n).map(|_| Position {
                x: next() * extent,
                y: next() * extent,
            }));
            match Self::from_positions(positions, range) {
                Ok(t) => return Ok(t),
                Err(e @ TopologyError::Disconnected(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Builds a topology from explicit positions.
    ///
    /// Node `i` gets id `NodeId(i)`; node 0 is the base station.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the position list is empty or too large,
    /// the range invalid, or some node is unreachable from the base station.
    pub fn from_positions(
        positions: Vec<Position>,
        radio_range: f64,
    ) -> Result<Self, TopologyError> {
        if positions.is_empty() {
            return Err(TopologyError::Empty);
        }
        if positions.len() > u16::MAX as usize + 1 {
            return Err(TopologyError::TooManyNodes(positions.len()));
        }
        if !(radio_range.is_finite() && radio_range > 0.0) {
            return Err(TopologyError::InvalidRange);
        }
        let n = positions.len();
        // Bucket the nodes once, then find each node's neighbours by scanning
        // only the buckets its radio disc can overlap — near-linear overall
        // for bounded-density deployments, versus the all-pairs O(n²) scan
        // this replaces. The old scan produced each neighbour list in
        // ascending id order (smaller ids were pushed during earlier outer
        // iterations, larger ids during the node's own), so sorting the
        // collected candidates ascending reproduces it byte for byte.
        let index = SpatialIndex::build(&positions, radio_range);
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 0..n {
            let list = &mut neighbors[i];
            index.for_each_candidate(positions[i], radio_range, |j| {
                if j.index() != i && positions[i].distance(positions[j.index()]) <= radio_range {
                    list.push(j);
                }
            });
            list.sort_unstable();
        }
        // BFS hop levels from the base station.
        let mut levels = vec![u32::MAX; n];
        levels[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &v in &neighbors[u] {
                if levels[v.index()] == u32::MAX {
                    levels[v.index()] = levels[u] + 1;
                    queue.push_back(v.index());
                }
            }
        }
        if let Some(idx) = levels.iter().position(|&l| l == u32::MAX) {
            return Err(TopologyError::Disconnected(idx as u16));
        }
        Ok(Topology {
            positions,
            radio_range,
            neighbors,
            levels,
            index,
        })
    }

    /// Number of nodes, including the base station.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(|i| NodeId(i as u16))
    }

    /// The node's position.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The configured radio transmission radius, feet.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Nodes within radio range of `node` (excluding itself).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// All nodes within `radius` feet of `center` (inclusive), ascending by
    /// id — a bucket query over the spatial index, touching only the cells
    /// the disc can overlap rather than every node.
    ///
    /// This is the general form of the precomputed [`Topology::neighbors`]
    /// lists (which fix the centre at a node and the radius at the radio
    /// range): audibility-style questions — "who can hear a transmitter
    /// standing here?", region-scoped CSMA or fault injection — ask it for
    /// arbitrary points and radii. A node at exactly `center` is included;
    /// a non-finite or negative radius returns no nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ttmqo_sim::{NodeId, Topology};
    ///
    /// let topo = Topology::grid(4)?;
    /// // Standing on the base station, a 25 ft disc hears nodes 0, 1 and 4
    /// // (20 ft away) but not the diagonal node 5 (28.3 ft).
    /// let heard = topo.nodes_within(topo.position(NodeId(0)), 25.0);
    /// assert_eq!(heard, vec![NodeId(0), NodeId(1), NodeId(4)]);
    /// # Ok::<(), ttmqo_sim::TopologyError>(())
    /// ```
    pub fn nodes_within(&self, center: Position, radius: f64) -> Vec<NodeId> {
        if !(radius.is_finite() && radius >= 0.0) {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.index.for_each_candidate(center, radius, |id| {
            if self.positions[id.index()].distance(center) <= radius {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    /// Whether two distinct nodes are within radio range of each other.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].distance(self.positions[b.index()]) <= self.radio_range
    }

    /// BFS hop distance from the base station (level 0).
    pub fn level(&self, node: NodeId) -> u32 {
        self.levels[node.index()]
    }

    /// All node levels, indexed by node id.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Maximum level over all nodes.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Link quality in `(0, 1]`, decaying with distance (1 at distance 0).
    ///
    /// TinyDB associates a parent with each node "based on the link quality";
    /// with a distance-decay model the best link is simply the closest
    /// upper-level neighbour, which matches mote radios to first order.
    pub fn link_quality(&self, a: NodeId, b: NodeId) -> f64 {
        let d = self.positions[a.index()].distance(self.positions[b.index()]);
        if d > self.radio_range {
            0.0
        } else {
            1.0 / (1.0 + (d / self.radio_range).powi(2))
        }
    }

    /// Neighbours of `node` one level closer to the base station.
    pub fn upper_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let my = self.level(node);
        self.neighbors(node)
            .iter()
            .copied()
            .filter(|&n| self.level(n) + 1 == my)
            .collect()
    }

    /// The default TinyDB parent: the upper-level neighbour with the best
    /// link quality (`None` only for the base station).
    pub fn default_parent(&self, node: NodeId) -> Option<NodeId> {
        if node == NodeId::BASE_STATION {
            return None;
        }
        self.upper_neighbors(node).into_iter().max_by(|&a, &b| {
            self.link_quality(node, a)
                .partial_cmp(&self.link_quality(node, b))
                .expect("link qualities are finite")
                // Deterministic tie-break on id.
                .then(b.0.cmp(&a.0).reverse())
        })
    }
}

use crate::snapshot::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for SpatialIndex {
    fn write(&self, w: &mut SnapWriter) {
        let SpatialIndex { cell_ft, cells } = self;
        w.put_f64(*cell_ft);
        cells.write(w);
    }
}

impl Restorable for SpatialIndex {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SpatialIndex {
            cell_ft: r.f64()?,
            cells: std::collections::HashMap::read(r)?,
        })
    }
}

impl Snapshot for Topology {
    // Everything — including the derived neighbour lists, BFS levels and the
    // spatial index — is serialized rather than rebuilt, so restoring a
    // big-grid topology costs a read, not an O(n) rebuild. This is what
    // warm-started campaigns amortize across cells.
    fn write(&self, w: &mut SnapWriter) {
        let Topology {
            positions,
            radio_range,
            neighbors,
            levels,
            index,
        } = self;
        positions.write(w);
        w.put_f64(*radio_range);
        neighbors.write(w);
        levels.write(w);
        index.write(w);
    }
}

impl Restorable for Topology {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let positions: Vec<Position> = Vec::read(r)?;
        let radio_range = r.f64()?;
        let neighbors: Vec<Vec<NodeId>> = Vec::read(r)?;
        let levels: Vec<u32> = Vec::read(r)?;
        let index = SpatialIndex::read(r)?;
        if neighbors.len() != positions.len() || levels.len() != positions.len() {
            return Err(SnapshotError::Corrupt(
                "topology table lengths disagree".into(),
            ));
        }
        Ok(Topology {
            positions,
            radio_range,
            neighbors,
            levels,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_parameters() {
        let t = Topology::grid(4).unwrap();
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.radio_range(), 50.0);
        // Corner-adjacent node distance is 20ft.
        assert!((t.position(NodeId(1)).x - 20.0).abs() < 1e-9);
        // 50ft range covers straight-2 (40ft), diagonal (28.3ft) and
        // knight-move (44.7ft) but not straight-3 (60ft).
        let n0 = t.neighbors(NodeId(0));
        assert!(n0.contains(&NodeId(1)));
        assert!(n0.contains(&NodeId(2)));
        assert!(n0.contains(&NodeId(5)));
        assert!(n0.contains(&NodeId(6)));
        assert!(!n0.contains(&NodeId(3)));
    }

    #[test]
    fn levels_are_bfs_hops() {
        let t = Topology::grid(4).unwrap();
        assert_eq!(t.level(NodeId(0)), 0);
        assert_eq!(t.level(NodeId(1)), 1);
        assert_eq!(t.level(NodeId(5)), 1);
        // Opposite corner of a 4×4 grid: (60,60) away; reachable in 2 hops
        // via (40,40).
        assert_eq!(t.level(NodeId(15)), 2);
        assert!(t.max_level() >= 2);
    }

    #[test]
    fn eight_by_eight_grid_levels() {
        let t = Topology::grid(8).unwrap();
        assert_eq!(t.node_count(), 64);
        // Far corner at (140,140): each hop covers at most 50ft in a
        // straight line, ~4-5 hops expected.
        assert!(t.level(NodeId(63)) >= 4);
    }

    #[test]
    fn disconnected_grid_is_rejected() {
        let err = Topology::grid_with(2, 100.0, 50.0).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected(_)));
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert_eq!(
            Topology::from_positions(vec![], 50.0).unwrap_err(),
            TopologyError::Empty
        );
        assert_eq!(
            Topology::from_positions(vec![Position::default()], 0.0).unwrap_err(),
            TopologyError::InvalidRange
        );
        assert_eq!(
            Topology::from_positions(vec![Position::default()], f64::NAN).unwrap_err(),
            TopologyError::InvalidRange
        );
    }

    #[test]
    fn single_node_topology_is_fine() {
        let t = Topology::from_positions(vec![Position::default()], 50.0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!(t.neighbors(NodeId(0)).is_empty());
        assert_eq!(t.default_parent(NodeId(0)), None);
    }

    #[test]
    fn link_quality_decays_with_distance() {
        let t = Topology::grid(4).unwrap();
        let q_near = t.link_quality(NodeId(0), NodeId(1)); // 20ft
        let q_far = t.link_quality(NodeId(0), NodeId(2)); // 40ft
        assert!(q_near > q_far);
        assert_eq!(t.link_quality(NodeId(0), NodeId(3)), 0.0); // 60ft
    }

    #[test]
    fn default_parent_is_closest_upper_neighbor() {
        let t = Topology::grid(4).unwrap();
        // Node 1 (level 1): only upper neighbour is the base station.
        assert_eq!(t.default_parent(NodeId(1)), Some(NodeId(0)));
        // Node 15 (level 2) should parent on some level-1 node.
        let p = t.default_parent(NodeId(15)).unwrap();
        assert_eq!(t.level(p), 1);
    }

    #[test]
    fn upper_neighbors_are_one_level_closer() {
        let t = Topology::grid(8).unwrap();
        for node in t.nodes() {
            for up in t.upper_neighbors(node) {
                assert_eq!(t.level(up) + 1, t.level(node));
            }
        }
    }

    #[test]
    fn node_cap_boundary_is_exact() {
        // 65,536 nodes (the full u16 id space) is legal; 65,537 is not —
        // node 65,537 would have no id. The reject happens before any O(n)
        // connectivity work, so the oversized case is cheap.
        let cap = u16::MAX as usize + 1;
        let over: Vec<Position> = (0..cap + 1)
            .map(|i| Position {
                x: i as f64,
                y: 0.0,
            })
            .collect();
        assert_eq!(
            Topology::from_positions(over, 50.0).unwrap_err(),
            TopologyError::TooManyNodes(cap + 1)
        );
        // At exactly the cap: a 256×256 grid (the largest square deployment
        // the id space admits) builds and addresses its last node.
        let t = Topology::grid(256).unwrap();
        assert_eq!(t.node_count(), cap);
        assert_eq!(t.position(NodeId(u16::MAX)).x, 255.0 * GRID_SPACING_FT);
        assert!(t.level(NodeId(u16::MAX)) > 0);
    }

    #[test]
    fn spatial_index_matches_all_pairs_scan() {
        // The bucket-index build must reproduce the old O(n²) scan exactly:
        // same neighbour sets, same (ascending) order — on an irregular
        // deployment where nodes straddle bucket boundaries.
        let t = Topology::random_uniform(200, 300.0, 60.0, 0xBEEF).unwrap();
        for a in t.nodes() {
            let brute: Vec<NodeId> = t
                .nodes()
                .filter(|&b| b != a && t.position(a).distance(t.position(b)) <= t.radio_range())
                .collect();
            assert_eq!(t.neighbors(a), &brute[..], "neighbour list of {a}");
        }
    }

    #[test]
    fn nodes_within_matches_brute_force_disc() {
        let t = Topology::random_uniform(150, 250.0, 55.0, 0xF00D).unwrap();
        // Arbitrary centres (on and off nodes) and radii, including a radius
        // larger than a bucket cell (forces the multi-cell reach path).
        let centers = [
            t.position(NodeId(0)),
            t.position(NodeId(77)),
            Position { x: 123.4, y: 210.9 },
        ];
        for center in centers {
            for radius in [0.0, 10.0, 55.0, 140.0] {
                let brute: Vec<NodeId> = t
                    .nodes()
                    .filter(|&b| t.position(b).distance(center) <= radius)
                    .collect();
                assert_eq!(t.nodes_within(center, radius), brute);
            }
        }
        // A node standing at the centre is included (distance 0).
        assert!(t
            .nodes_within(t.position(NodeId(3)), 0.0)
            .contains(&NodeId(3)));
        // Degenerate radii find nothing rather than panicking.
        assert!(t.nodes_within(centers[2], f64::NAN).is_empty());
        assert!(t.nodes_within(centers[2], -1.0).is_empty());
    }

    #[test]
    fn in_range_is_symmetric_and_irreflexive() {
        let t = Topology::grid(4).unwrap();
        for a in t.nodes() {
            assert!(!t.in_range(a, a));
            for b in t.nodes() {
                assert_eq!(t.in_range(a, b), t.in_range(b, a));
            }
        }
    }
}
