//! Network topology: node placement, radio connectivity, levels.
//!
//! The paper deploys nodes "uniformly in an n×n two-dimensional grid, with the
//! base station node 0 at the upper left corner. The radio transmission radius
//! is set to be 50 feet, while the grid spacing is 20 feet." [`Topology::grid`]
//! reproduces exactly that; arbitrary placements are supported through
//! [`Topology::from_positions`].

use std::fmt;

/// Identifier of a node in the simulated network.
///
/// Node 0 is, by convention, the base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The base station's id.
    pub const BASE_STATION: NodeId = NodeId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A 2-D position in feet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate, feet.
    pub x: f64,
    /// Vertical coordinate, feet.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to another position, feet.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Error constructing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No nodes were given.
    Empty,
    /// More nodes than `NodeId` can address.
    TooManyNodes(usize),
    /// The radio range is not positive and finite.
    InvalidRange,
    /// Some node cannot reach the base station over any number of hops.
    Disconnected(u16),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => f.write_str("topology has no nodes"),
            TopologyError::TooManyNodes(n) => write!(f, "too many nodes: {n}"),
            TopologyError::InvalidRange => f.write_str("radio range must be positive and finite"),
            TopologyError::Disconnected(id) => {
                write!(f, "node n{id} cannot reach the base station")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable network layout: positions, radio range and derived
/// connectivity (neighbour lists and hop levels from the base station).
///
/// # Examples
///
/// ```
/// use ttmqo_sim::{Topology, NodeId};
///
/// // The paper's 4×4 deployment: 20 ft spacing, 50 ft radio range.
/// let topo = Topology::grid(4)?;
/// assert_eq!(topo.node_count(), 16);
/// assert_eq!(topo.level(NodeId(0)), 0);
/// assert!(topo.neighbors(NodeId(0)).len() >= 3);
/// # Ok::<(), ttmqo_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    levels: Vec<u32>,
}

/// The paper's grid spacing, feet.
pub const GRID_SPACING_FT: f64 = 20.0;
/// The paper's radio transmission radius, feet.
pub const RADIO_RANGE_FT: f64 = 50.0;

impl Topology {
    /// The paper's uniform n×n grid: spacing 20 ft, radio range 50 ft, base
    /// station node 0 at the upper-left corner, row-major ids.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `n == 0` or the grid exceeds the id space.
    pub fn grid(n: usize) -> Result<Self, TopologyError> {
        Self::grid_with(n, GRID_SPACING_FT, RADIO_RANGE_FT)
    }

    /// An n×n grid with custom spacing and radio range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] on an empty grid, id-space overflow, invalid
    /// range, or a spacing so large the grid is disconnected.
    pub fn grid_with(n: usize, spacing: f64, range: f64) -> Result<Self, TopologyError> {
        let positions: Vec<Position> = (0..n * n)
            .map(|i| Position {
                x: (i % n) as f64 * spacing,
                y: (i / n) as f64 * spacing,
            })
            .collect();
        Self::from_positions(positions, range)
    }

    /// A random uniform deployment: `n` nodes dropped uniformly over an
    /// `extent × extent` square (the base station pinned at the origin
    /// corner), retrying deterministically until the deployment is connected
    /// under the given radio range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if `n == 0`, the range is invalid, or no
    /// connected deployment is found within 64 deterministic retries
    /// (the density is too low for the range).
    pub fn random_uniform(
        n: usize,
        extent: f64,
        range: f64,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut last_err = TopologyError::Disconnected(0);
        for _ in 0..64 {
            let mut positions = vec![Position { x: 0.0, y: 0.0 }];
            positions.extend((1..n).map(|_| Position {
                x: next() * extent,
                y: next() * extent,
            }));
            match Self::from_positions(positions, range) {
                Ok(t) => return Ok(t),
                Err(e @ TopologyError::Disconnected(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Builds a topology from explicit positions.
    ///
    /// Node `i` gets id `NodeId(i)`; node 0 is the base station.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the position list is empty or too large,
    /// the range invalid, or some node is unreachable from the base station.
    pub fn from_positions(
        positions: Vec<Position>,
        radio_range: f64,
    ) -> Result<Self, TopologyError> {
        if positions.is_empty() {
            return Err(TopologyError::Empty);
        }
        if positions.len() > u16::MAX as usize + 1 {
            return Err(TopologyError::TooManyNodes(positions.len()));
        }
        if !(radio_range.is_finite() && radio_range > 0.0) {
            return Err(TopologyError::InvalidRange);
        }
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance(positions[j]) <= radio_range {
                    neighbors[i].push(NodeId(j as u16));
                    neighbors[j].push(NodeId(i as u16));
                }
            }
        }
        // BFS hop levels from the base station.
        let mut levels = vec![u32::MAX; n];
        levels[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &v in &neighbors[u] {
                if levels[v.index()] == u32::MAX {
                    levels[v.index()] = levels[u] + 1;
                    queue.push_back(v.index());
                }
            }
        }
        if let Some(idx) = levels.iter().position(|&l| l == u32::MAX) {
            return Err(TopologyError::Disconnected(idx as u16));
        }
        Ok(Topology {
            positions,
            radio_range,
            neighbors,
            levels,
        })
    }

    /// Number of nodes, including the base station.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(|i| NodeId(i as u16))
    }

    /// The node's position.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The configured radio transmission radius, feet.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Nodes within radio range of `node` (excluding itself).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// Whether two distinct nodes are within radio range of each other.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].distance(self.positions[b.index()]) <= self.radio_range
    }

    /// BFS hop distance from the base station (level 0).
    pub fn level(&self, node: NodeId) -> u32 {
        self.levels[node.index()]
    }

    /// All node levels, indexed by node id.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Maximum level over all nodes.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Link quality in `(0, 1]`, decaying with distance (1 at distance 0).
    ///
    /// TinyDB associates a parent with each node "based on the link quality";
    /// with a distance-decay model the best link is simply the closest
    /// upper-level neighbour, which matches mote radios to first order.
    pub fn link_quality(&self, a: NodeId, b: NodeId) -> f64 {
        let d = self.positions[a.index()].distance(self.positions[b.index()]);
        if d > self.radio_range {
            0.0
        } else {
            1.0 / (1.0 + (d / self.radio_range).powi(2))
        }
    }

    /// Neighbours of `node` one level closer to the base station.
    pub fn upper_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let my = self.level(node);
        self.neighbors(node)
            .iter()
            .copied()
            .filter(|&n| self.level(n) + 1 == my)
            .collect()
    }

    /// The default TinyDB parent: the upper-level neighbour with the best
    /// link quality (`None` only for the base station).
    pub fn default_parent(&self, node: NodeId) -> Option<NodeId> {
        if node == NodeId::BASE_STATION {
            return None;
        }
        self.upper_neighbors(node).into_iter().max_by(|&a, &b| {
            self.link_quality(node, a)
                .partial_cmp(&self.link_quality(node, b))
                .expect("link qualities are finite")
                // Deterministic tie-break on id.
                .then(b.0.cmp(&a.0).reverse())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_parameters() {
        let t = Topology::grid(4).unwrap();
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.radio_range(), 50.0);
        // Corner-adjacent node distance is 20ft.
        assert!((t.position(NodeId(1)).x - 20.0).abs() < 1e-9);
        // 50ft range covers straight-2 (40ft), diagonal (28.3ft) and
        // knight-move (44.7ft) but not straight-3 (60ft).
        let n0 = t.neighbors(NodeId(0));
        assert!(n0.contains(&NodeId(1)));
        assert!(n0.contains(&NodeId(2)));
        assert!(n0.contains(&NodeId(5)));
        assert!(n0.contains(&NodeId(6)));
        assert!(!n0.contains(&NodeId(3)));
    }

    #[test]
    fn levels_are_bfs_hops() {
        let t = Topology::grid(4).unwrap();
        assert_eq!(t.level(NodeId(0)), 0);
        assert_eq!(t.level(NodeId(1)), 1);
        assert_eq!(t.level(NodeId(5)), 1);
        // Opposite corner of a 4×4 grid: (60,60) away; reachable in 2 hops
        // via (40,40).
        assert_eq!(t.level(NodeId(15)), 2);
        assert!(t.max_level() >= 2);
    }

    #[test]
    fn eight_by_eight_grid_levels() {
        let t = Topology::grid(8).unwrap();
        assert_eq!(t.node_count(), 64);
        // Far corner at (140,140): each hop covers at most 50ft in a
        // straight line, ~4-5 hops expected.
        assert!(t.level(NodeId(63)) >= 4);
    }

    #[test]
    fn disconnected_grid_is_rejected() {
        let err = Topology::grid_with(2, 100.0, 50.0).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected(_)));
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert_eq!(
            Topology::from_positions(vec![], 50.0).unwrap_err(),
            TopologyError::Empty
        );
        assert_eq!(
            Topology::from_positions(vec![Position::default()], 0.0).unwrap_err(),
            TopologyError::InvalidRange
        );
        assert_eq!(
            Topology::from_positions(vec![Position::default()], f64::NAN).unwrap_err(),
            TopologyError::InvalidRange
        );
    }

    #[test]
    fn single_node_topology_is_fine() {
        let t = Topology::from_positions(vec![Position::default()], 50.0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!(t.neighbors(NodeId(0)).is_empty());
        assert_eq!(t.default_parent(NodeId(0)), None);
    }

    #[test]
    fn link_quality_decays_with_distance() {
        let t = Topology::grid(4).unwrap();
        let q_near = t.link_quality(NodeId(0), NodeId(1)); // 20ft
        let q_far = t.link_quality(NodeId(0), NodeId(2)); // 40ft
        assert!(q_near > q_far);
        assert_eq!(t.link_quality(NodeId(0), NodeId(3)), 0.0); // 60ft
    }

    #[test]
    fn default_parent_is_closest_upper_neighbor() {
        let t = Topology::grid(4).unwrap();
        // Node 1 (level 1): only upper neighbour is the base station.
        assert_eq!(t.default_parent(NodeId(1)), Some(NodeId(0)));
        // Node 15 (level 2) should parent on some level-1 node.
        let p = t.default_parent(NodeId(15)).unwrap();
        assert_eq!(t.level(p), 1);
    }

    #[test]
    fn upper_neighbors_are_one_level_closer() {
        let t = Topology::grid(8).unwrap();
        for node in t.nodes() {
            for up in t.upper_neighbors(node) {
                assert_eq!(t.level(up) + 1, t.level(node));
            }
        }
    }

    #[test]
    fn in_range_is_symmetric_and_irreflexive() {
        let t = Topology::grid(4).unwrap();
        for a in t.nodes() {
            assert!(!t.in_range(a, a));
            for b in t.nodes() {
                assert_eq!(t.in_range(a, b), t.in_range(b, a));
            }
        }
    }
}
