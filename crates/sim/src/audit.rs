//! Standing invariant auditor: the reconciliation checks that previously
//! lived only inside tests, promoted to a per-run runtime artifact.
//!
//! A deterministic simulator earns trust by being *checkable*: the trace is
//! a faithful record of the run (the provenance test), the profiler's
//! counts equal the engine's phase counters (the golden reconciliation
//! test), per-node energy sums to the radio model's total (the metrics
//! test). Those invariants used to be verified once, in CI, on one cell —
//! a week-long 64×64 soak campaign ran on faith. An [`AuditReport`] re-runs
//! them against every audited run's own artifacts and records each breach
//! as a structured [`AuditViolation`], so a sweep that silently produced
//! wrong numbers becomes a sweep that fails loudly.
//!
//! The auditor is strictly *post-hoc*: every check is arithmetic over data
//! the run already produced (counters, reports, trace summaries). It draws
//! no RNG, installs no hooks, and branches on nothing mid-run, so an
//! audited run is bit-identical to an unaudited one — the `trace` contract,
//! extended to auditing.

use crate::energy::EnergyProfile;
use crate::engine::EngineStats;
use crate::metrics::{CompletenessReport, Metrics};
use crate::profile::{EnginePhase, ProfileReport};
use crate::trace::{TraceSummary, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt;

/// Which invariant a violation (or a skipped check) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// Trace-reconstructed per-query answer counts equal the run report's.
    TraceAnswers,
    /// Profiler per-phase event counts equal the engine's phase counters.
    ProfileCounts,
    /// Per-node energy plus sampling energy sums to the model's totals.
    EnergyConservation,
    /// Frame-slab and in-flight high-water marks are mutually consistent.
    SlabSanity,
    /// The per-phase event breakdown sums to `events_processed`.
    PhaseAccounting,
    /// Orphan, repair and completeness accounting agree with the fault plan.
    Completeness,
}

impl AuditCheck {
    /// Every check, in report order.
    pub const ALL: [AuditCheck; 6] = [
        AuditCheck::TraceAnswers,
        AuditCheck::ProfileCounts,
        AuditCheck::EnergyConservation,
        AuditCheck::SlabSanity,
        AuditCheck::PhaseAccounting,
        AuditCheck::Completeness,
    ];

    /// Stable kebab-case name used in JSON and log lines.
    pub fn name(self) -> &'static str {
        match self {
            AuditCheck::TraceAnswers => "trace-answers",
            AuditCheck::ProfileCounts => "profile-counts",
            AuditCheck::EnergyConservation => "energy-conservation",
            AuditCheck::SlabSanity => "slab-sanity",
            AuditCheck::PhaseAccounting => "phase-accounting",
            AuditCheck::Completeness => "completeness",
        }
    }
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant: which check, on what subject, what the invariant
/// required and what the run actually recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The invariant that failed.
    pub check: AuditCheck,
    /// What was being reconciled (a counter name, a query id, a node).
    pub subject: String,
    /// The value the invariant requires, rendered.
    pub expected: String,
    /// The value the run recorded, rendered.
    pub actual: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: expected {}, got {}",
            self.check, self.subject, self.expected, self.actual
        )
    }
}

/// Outcome of auditing one run: how many checks ran, how many were skipped
/// for lack of an artifact (no profile attached, no readable trace), and
/// every violation found. An empty `violations` list from a nonzero
/// `checks_run` is the auditor's actual claim; all-skipped means "nothing
/// was verified", not "nothing is wrong".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Checks that executed against a present artifact.
    pub checks_run: u32,
    /// Checks skipped because their artifact was absent or lossy.
    pub checks_skipped: u32,
    /// Every invariant breach found, in check order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty report; feed it checks.
    pub fn new() -> Self {
        AuditReport::default()
    }

    /// Whether every executed check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(
        &mut self,
        check: AuditCheck,
        subject: &str,
        expected: impl fmt::Display,
        actual: impl fmt::Display,
    ) {
        self.violations.push(AuditViolation {
            check,
            subject: subject.to_string(),
            expected: expected.to_string(),
            actual: actual.to_string(),
        });
    }

    /// Engine-internal accounting: the per-phase event breakdown must sum
    /// to `events_processed`, and the frame slab's occupancy figures must
    /// be mutually consistent (in-flight ≤ slab length ≤ high water ≤
    /// frames ever allocated).
    pub fn check_engine(&mut self, engine: &EngineStats) {
        self.checks_run += 1;
        let phase_sum = engine.timer_events
            + engine.deliver_events
            + engine.command_events
            + engine.maintenance_events
            + engine.fault_events;
        if phase_sum != engine.events_processed {
            self.violate(
                AuditCheck::PhaseAccounting,
                "timer+deliver+command+maintenance+fault",
                engine.events_processed,
                phase_sum,
            );
        }
        self.checks_run += 1;
        if engine.frames_in_flight > engine.frame_slab_len {
            self.violate(
                AuditCheck::SlabSanity,
                "frames_in_flight <= frame_slab_len",
                format!("<= {}", engine.frame_slab_len),
                engine.frames_in_flight,
            );
        }
        if engine.frame_slab_len > engine.frame_slab_high_water {
            self.violate(
                AuditCheck::SlabSanity,
                "frame_slab_len <= frame_slab_high_water",
                format!("<= {}", engine.frame_slab_high_water),
                engine.frame_slab_len,
            );
        }
        if (engine.frame_slab_high_water as u64) > engine.frames_total {
            self.violate(
                AuditCheck::SlabSanity,
                "frame_slab_high_water <= frames_total",
                format!("<= {}", engine.frames_total),
                engine.frame_slab_high_water,
            );
        }
    }

    /// Profiler-vs-engine reconciliation: the profiler's counts are exact
    /// (credited in bulk from the engine's counters, not sampled), so each
    /// engine phase's profiled event count must equal the corresponding
    /// [`EngineStats`] counter. Skipped when no profile was attached.
    pub fn check_profile(&mut self, profile: Option<&ProfileReport>, engine: &EngineStats) {
        let Some(profile) = profile else {
            self.checks_skipped += 1;
            return;
        };
        self.checks_run += 1;
        for phase in EnginePhase::ALL {
            let expected = match phase {
                EnginePhase::Timer => engine.timer_events,
                EnginePhase::Deliver => engine.deliver_events,
                EnginePhase::Command => engine.command_events,
                EnginePhase::Maintenance => engine.maintenance_events,
                EnginePhase::Fault => engine.fault_events,
            };
            let counted = profile.get(phase.into()).events;
            if counted != expected {
                self.violate(
                    AuditCheck::ProfileCounts,
                    &format!("{}_events", phase.name()),
                    expected,
                    counted,
                );
            }
        }
    }

    /// Energy conservation: the sum of per-node spend under `profile`, plus
    /// the globally-accounted sampling energy, must equal the reported
    /// whole-run total bit-for-bit, and the reported hotspot must equal the
    /// actual per-node maximum. (The reference values are recomputed from
    /// the same per-node accumulators through the same fold, so a mismatch
    /// means a corrupted counter or a report assembled under the wrong
    /// profile — not float noise.)
    pub fn check_energy(
        &mut self,
        metrics: &Metrics,
        profile: &EnergyProfile,
        reported_total_mj: f64,
        reported_max_node_mj: f64,
    ) {
        self.checks_run += 1;
        let total = metrics.total_energy_mj(profile);
        if total.to_bits() != reported_total_mj.to_bits() {
            self.violate(
                AuditCheck::EnergyConservation,
                "energy_mj",
                total,
                reported_total_mj,
            );
        }
        let max_node = metrics.max_node_energy_mj(profile);
        if max_node.to_bits() != reported_max_node_mj.to_bits() {
            self.violate(
                AuditCheck::EnergyConservation,
                "max_node_energy_mj",
                max_node,
                reported_max_node_mj,
            );
        }
    }

    /// Orphan / repair / completeness consistency: no query answers more
    /// epochs than it expected, repair latencies never outnumber triggered
    /// repairs, and a fault-free run must show zero orphaned nodes and zero
    /// processed fault events.
    pub fn check_completeness(
        &mut self,
        completeness: &CompletenessReport,
        orphaned_nodes: u64,
        fault_events: u64,
        faults_active: bool,
    ) {
        self.checks_run += 1;
        for (qid, qc) in &completeness.per_query {
            if qc.answered_epochs > qc.expected_epochs {
                self.violate(
                    AuditCheck::Completeness,
                    &format!("query {qid} answered_epochs <= expected_epochs"),
                    format!("<= {}", qc.expected_epochs),
                    qc.answered_epochs,
                );
            }
        }
        if (completeness.repair_latency_ms.len() as u64) > completeness.repairs_triggered {
            self.violate(
                AuditCheck::Completeness,
                "repair latencies <= repairs_triggered",
                format!("<= {}", completeness.repairs_triggered),
                completeness.repair_latency_ms.len(),
            );
        }
        if !faults_active {
            if orphaned_nodes != 0 {
                self.violate(
                    AuditCheck::Completeness,
                    "orphaned_nodes under an empty fault plan",
                    0,
                    orphaned_nodes,
                );
            }
            if fault_events != 0 {
                self.violate(
                    AuditCheck::Completeness,
                    "fault_events under an empty fault plan",
                    0,
                    fault_events,
                );
            }
        }
    }

    /// Trace ↔ report reconciliation: per-user-query answer counts
    /// reconstructed from the trace alone must equal the run report's, in
    /// both directions (no phantom trace queries, no untraced answers).
    /// Skipped — not failed — when the trace is known lossy (ring-evicted
    /// records, a byte-truncated tail, malformed lines): an incomplete
    /// record cannot refute the run.
    pub fn check_trace_answers(
        &mut self,
        summary: &TraceSummary,
        report_answers: &BTreeMap<u64, u64>,
    ) {
        if !summary.is_lossless() {
            self.checks_skipped += 1;
            return;
        }
        self.checks_run += 1;
        for (qid, expected) in report_answers {
            let traced = summary.answers_per_query.get(qid).copied().unwrap_or(0);
            if traced != *expected {
                self.violate(
                    AuditCheck::TraceAnswers,
                    &format!("query {qid} answers"),
                    expected,
                    traced,
                );
            }
        }
        for qid in summary.answers_per_query.keys() {
            if !report_answers.contains_key(qid) {
                self.violate(
                    AuditCheck::TraceAnswers,
                    &format!("query {qid} in trace but not in report"),
                    "absent",
                    summary.answers_per_query[qid],
                );
            }
        }
    }

    /// One JSON object:
    ///
    /// ```json
    /// {"schema_version":3,"checks_run":5,"checks_skipped":1,"violations":[
    ///   {"check":"profile-counts","subject":"timer_events",
    ///    "expected":"4000","actual":"4001"}]}
    /// ```
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring: a field added to the report without a
        // serialization decision here is a compile error.
        let AuditReport {
            checks_run,
            checks_skipped,
            violations,
        } = self;
        let mut out = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"checks_run\":{checks_run},\
             \"checks_skipped\":{checks_skipped},\"violations\":["
        );
        for (i, v) in violations.iter().enumerate() {
            let AuditViolation {
                check,
                subject,
                expected,
                actual,
            } = v;
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"check\":\"{}\",\"subject\":\"{}\",\"expected\":\"{}\",\"actual\":\"{}\"}}",
                check,
                escape(subject),
                escape(expected),
                escape(actual),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} checks run, {} skipped, {} violations",
            self.checks_run,
            self.checks_skipped,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QueryCompleteness;
    use crate::radio::MsgKind;
    use crate::time::SimTime;

    fn healthy_engine() -> EngineStats {
        EngineStats {
            events_processed: 100,
            frames_total: 40,
            frame_slab_len: 4,
            frame_slab_high_water: 4,
            frames_in_flight: 2,
            csma_capped_deferrals: 0,
            csma_sorts_saved: 40,
            timer_events: 60,
            deliver_events: 30,
            command_events: 5,
            maintenance_events: 5,
            fault_events: 0,
        }
    }

    #[test]
    fn healthy_counters_pass_every_check() {
        let mut audit = AuditReport::new();
        audit.check_engine(&healthy_engine());
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(audit.checks_run, 2);
        assert_eq!(audit.checks_skipped, 0);
    }

    #[test]
    fn a_seeded_phase_corruption_is_flagged() {
        // The audit-catches-a-corruption contract: bump one counter and the
        // phase-accounting invariant must name it.
        let mut engine = healthy_engine();
        engine.timer_events += 1;
        let mut audit = AuditReport::new();
        audit.check_engine(&engine);
        assert!(!audit.is_clean());
        assert_eq!(audit.violations.len(), 1);
        assert_eq!(audit.violations[0].check, AuditCheck::PhaseAccounting);
        assert_eq!(audit.violations[0].expected, "100");
        assert_eq!(audit.violations[0].actual, "101");
    }

    #[test]
    fn slab_inconsistencies_are_flagged_individually() {
        let mut engine = healthy_engine();
        engine.frames_in_flight = 9; // > slab len
        engine.frame_slab_len = 5; // > high water
        let mut audit = AuditReport::new();
        audit.check_engine(&engine);
        let slab: Vec<_> = audit
            .violations
            .iter()
            .filter(|v| v.check == AuditCheck::SlabSanity)
            .collect();
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn missing_profile_is_skipped_not_failed() {
        let mut audit = AuditReport::new();
        audit.check_profile(None, &healthy_engine());
        assert!(audit.is_clean());
        assert_eq!(audit.checks_run, 0);
        assert_eq!(audit.checks_skipped, 1);
    }

    #[test]
    fn energy_recomputation_must_match_bit_for_bit() {
        let profile = EnergyProfile::default();
        let mut m = Metrics::new(3);
        m.record_tx(0, MsgKind::Result, 30, 400.0);
        m.record_rx(2, 50.0);
        m.record_sample();
        m.set_horizon(SimTime::from_ms(1000));
        let total = m.total_energy_mj(&profile);
        let max_node = m.max_node_energy_mj(&profile);

        let mut audit = AuditReport::new();
        audit.check_energy(&m, &profile, total, max_node);
        assert!(audit.is_clean(), "{audit}");

        // A corrupted report total is a conservation violation.
        let mut audit = AuditReport::new();
        audit.check_energy(&m, &profile, total + 1.0, max_node);
        assert_eq!(audit.violations.len(), 1);
        assert_eq!(audit.violations[0].check, AuditCheck::EnergyConservation);
        assert_eq!(audit.violations[0].subject, "energy_mj");
    }

    #[test]
    fn completeness_checks_cover_orphans_and_overcounts() {
        let mut completeness = CompletenessReport::default();
        completeness.per_query.insert(
            ttmqo_query::QueryId(7),
            QueryCompleteness {
                expected_epochs: 4,
                answered_epochs: 5, // impossible
                expected_rows: 0,
                delivered_rows: 0,
            },
        );
        let mut audit = AuditReport::new();
        audit.check_completeness(&completeness, 1, 2, false);
        // answered > expected, orphans without faults, fault events without
        // a plan: three distinct violations.
        assert_eq!(audit.violations.len(), 3);
        assert!(audit
            .violations
            .iter()
            .all(|v| v.check == AuditCheck::Completeness));
        // With a live fault plan, orphans and fault events are legitimate.
        let mut audit = AuditReport::new();
        audit.check_completeness(&CompletenessReport::default(), 1, 2, true);
        assert!(audit.is_clean());
    }

    #[test]
    fn trace_answer_counts_reconcile_in_both_directions() {
        let mut summary = TraceSummary::default();
        summary.answers_per_query.insert(1, 10);
        summary.answers_per_query.insert(2, 4);
        let mut report: BTreeMap<u64, u64> = BTreeMap::new();
        report.insert(1, 10);
        report.insert(2, 4);
        let mut audit = AuditReport::new();
        audit.check_trace_answers(&summary, &report);
        assert!(audit.is_clean());

        // A count drift and a phantom query are both named.
        report.insert(1, 11);
        report.remove(&2);
        let mut audit = AuditReport::new();
        audit.check_trace_answers(&summary, &report);
        assert_eq!(audit.violations.len(), 2);
        assert!(audit.violations.iter().any(|v| v.subject.contains("1")));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.subject.contains("not in report")));
    }

    #[test]
    fn lossy_traces_are_skipped_not_compared() {
        let report: BTreeMap<u64, u64> = [(1, 10)].into_iter().collect();
        for lossy in [
            TraceSummary {
                truncated_tail: true,
                ..TraceSummary::default()
            },
            TraceSummary {
                dropped_records: 3,
                ..TraceSummary::default()
            },
            TraceSummary {
                malformed_lines: 1,
                ..TraceSummary::default()
            },
        ] {
            let mut audit = AuditReport::new();
            audit.check_trace_answers(&lossy, &report);
            assert!(audit.is_clean(), "lossy trace must not fail the audit");
            assert_eq!(audit.checks_run, 0);
            assert_eq!(audit.checks_skipped, 1);
        }
    }

    #[test]
    fn json_is_wellformed_and_carries_every_field() {
        let mut engine = healthy_engine();
        engine.deliver_events += 2;
        let mut audit = AuditReport::new();
        audit.check_engine(&engine);
        audit.check_profile(None, &engine);
        let json = audit.to_json();
        assert!(json.starts_with("{\"schema_version\":"));
        assert!(json.contains("\"checks_run\":2"));
        assert!(json.contains("\"checks_skipped\":1"));
        assert!(json.contains("\"check\":\"phase-accounting\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        // Display names every violation.
        assert!(audit.to_string().contains("phase-accounting"));
    }

    #[test]
    fn every_check_has_a_stable_name() {
        for check in AuditCheck::ALL {
            assert!(!check.name().is_empty());
            assert!(check.name().is_ascii());
        }
    }
}
