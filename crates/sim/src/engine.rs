//! The discrete-event simulation engine.
//!
//! A [`Simulator`] drives one [`NodeApp`] instance per node. Apps interact
//! with the world exclusively through the [`Ctx`] handed to their callbacks:
//! sending frames, setting timers, sampling sensors, sleeping and emitting
//! outputs. The engine models:
//!
//! * per-node channel occupancy — a node's transmissions serialize, and each
//!   costs `C_start + C_trans·len` of airtime (the paper's cost model);
//! * the broadcast nature of the radio — every frame physically reaches all
//!   in-range nodes; the [`Destination`] selects who processes it;
//! * packet-level collisions (optional) — two frames overlapping in time at a
//!   common receiver corrupt each other there, as in packet-level TOSSIM;
//! * random per-receiver loss (optional) and bounded unicast retransmission;
//! * sleep mode — a sleeping node receives nothing until it wakes.
//!
//! Everything is deterministic given the seed.
//!
//! # Hot-path memory design
//!
//! The transmit/deliver loop is what every campaign cell replays thousands
//! of epochs through, so its steady state is allocation-free and its memory
//! bounded by *in-flight* frames, not total transmissions:
//!
//! * payloads are stored once per transmission behind an [`Arc`]; a
//!   broadcast delivered to k neighbours clones k reference counts, never
//!   k payloads (retransmissions share the same allocation too);
//! * frame state lives in a slab with a free list — a slot is recycled as
//!   soon as the last scheduled delivery of its frame has fired, so slab
//!   length equals the high-water mark of concurrently in-flight frames
//!   (see [`EngineStats::frame_slab_high_water`]);
//! * the per-callback action queue reuses a per-engine scratch buffer
//!   instead of allocating per callback, and delivery fan-out iterates the
//!   topology's neighbour slice in place rather than copying it;
//! * per-node `incoming` frame lists are kept sorted by insertion
//!   (`partition_point` + insert, cost bounded by the in-flight frames at
//!   one node), so the CSMA carrier-sense scan walks them in place — no
//!   per-transmit copy, no per-transmit sort (see
//!   [`EngineStats::csma_sorts_saved`]);
//! * the event queue is a calendar queue ([`crate::CalendarQueue`]) rather
//!   than a binary heap: amortized O(1) push/pop with one-bucket locality,
//!   popping in bit-identical `(time, seq)` order — at 64×64 scale the heap's
//!   O(log n) cache-missing sift dominated the whole engine;
//! * one `Deliver` event covers a frame's whole fan-out (receivers are
//!   walked in neighbour order when it fires — provably the order the
//!   per-receiver events popped in), dividing event-queue traffic by the
//!   fan-out factor;
//! * collision markers live on the frame itself (a list bounded by the
//!   fan-out, capacity recycled with the slab slot) instead of a global
//!   hash set, so the transmit/delivery paths do no hashing.

use crate::calendar::CalendarQueue;
use crate::faults::{FaultOverlay, FaultPlan};
use crate::field::SensorField;
use crate::incoming::{IncomingArena, IncomingFrame};
use crate::metrics::Metrics;
use crate::profile;
use crate::profile::{EnginePhase, ProfileHandle, ProfilePhase, ProfileScratch};
use crate::radio::{Destination, MsgKind, RadioParams};
use crate::time::SimTime;
use crate::timeseries::WindowRecorder;
use crate::topology::{NodeId, Topology};
use crate::trace::{TraceDest, TraceEvent, TraceHandle};
use std::fmt::Debug;
use std::sync::Arc;
use ttmqo_query::Attribute;

/// Behaviour of one node (including the base station, which is node 0).
///
/// All interaction with the network happens through the [`Ctx`]: the engine
/// applies queued actions after each callback returns.
pub trait NodeApp: Sized {
    /// Application frame payload carried by radio messages.
    type Payload: Clone + Debug;
    /// External commands injected into nodes from outside the network
    /// (e.g. a user posing a query at the base station).
    type Command: Debug;
    /// Records emitted toward the outside world (e.g. query answers
    /// delivered by the base station).
    type Output: Debug;

    /// Called once for every node when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Payload, Self::Output>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Payload, Self::Output>, key: u64);

    /// Called when a frame addressed to this node is received intact.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Payload, Self::Output>,
        from: NodeId,
        kind: MsgKind,
        payload: &Self::Payload,
    );

    /// Called when an external command scheduled via
    /// [`Simulator::schedule_command`] arrives.
    fn on_command(&mut self, ctx: &mut Ctx<'_, Self::Payload, Self::Output>, cmd: Self::Command);

    /// Called when a frame *not* addressed to this node is overheard intact
    /// (the broadcast nature of the radio: every in-range, awake node
    /// physically receives every frame). Default: ignore.
    fn on_overhear(
        &mut self,
        ctx: &mut Ctx<'_, Self::Payload, Self::Output>,
        from: NodeId,
        kind: MsgKind,
        payload: &Self::Payload,
    ) {
        let _ = (ctx, from, kind, payload);
    }

    /// Called when a unicast frame to `dest` exhausted its retry budget
    /// without being received — the link-layer acknowledgement never came
    /// back, because the receiver is dead, asleep, or the channel dropped
    /// every attempt. This is the only delivery feedback the radio gives;
    /// broadcast and multicast frames are unacknowledged. Default: ignore.
    fn on_send_failed(
        &mut self,
        ctx: &mut Ctx<'_, Self::Payload, Self::Output>,
        dest: NodeId,
        kind: MsgKind,
    ) {
        let _ = (ctx, dest, kind);
    }
}

/// Handle through which a node interacts with the simulated world during a
/// callback.
#[derive(Debug)]
pub struct Ctx<'a, P, O> {
    node: NodeId,
    now_us: u64,
    topology: &'a Topology,
    field: &'a dyn SensorField,
    metrics: &'a mut Metrics,
    outputs: &'a mut Vec<OutputRecord<O>>,
    /// Engine-owned scratch, drained and reused across callbacks.
    actions: &'a mut Vec<Action<P>>,
    rng_state: &'a mut u64,
    trace: &'a TraceHandle,
    timeseries: &'a mut Option<Box<WindowRecorder>>,
}

/// One record emitted by a node via [`Ctx::emit`].
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRecord<O> {
    /// When the record was emitted.
    pub time: SimTime,
    /// The emitting node.
    pub node: NodeId,
    /// The record itself.
    pub output: O,
}

impl<'a, P, O> Ctx<'a, P, O> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ms(self.now_us / 1000)
    }

    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The network topology (positions, neighbours, levels).
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// This node's hop level (0 = base station).
    pub fn level(&self) -> u32 {
        self.topology.level(self.node)
    }

    /// Whether this node is the base station.
    pub fn is_base_station(&self) -> bool {
        self.node == NodeId::BASE_STATION
    }

    /// Transmits a frame. `payload_bytes` is the application payload length;
    /// the radio adds its header. The frame occupies this node's channel for
    /// `C_start + C_trans·len` and reaches in-range recipients when the
    /// transmission completes.
    ///
    /// The payload is stored once behind an [`Arc`] however many receivers
    /// the frame reaches; an app re-sending the same payload may pass an
    /// `Arc<P>` directly to share the allocation across transmissions.
    pub fn send(
        &mut self,
        dest: Destination,
        kind: MsgKind,
        payload_bytes: usize,
        payload: impl Into<Arc<P>>,
    ) {
        self.actions.push(Action::Send {
            dest,
            kind,
            payload_bytes,
            payload: payload.into(),
        });
    }

    /// Arms a one-shot timer `delay_ms` from now; `key` is returned to
    /// [`NodeApp::on_timer`].
    pub fn set_timer(&mut self, delay_ms: u64, key: u64) {
        self.actions.push(Action::SetTimer { delay_ms, key });
    }

    /// Samples one attribute from the sensor field (charged to the sampling
    /// energy budget).
    pub fn read_sensor(&mut self, attr: Attribute) -> f64 {
        self.metrics.record_sample();
        if let Some(ts) = self.timeseries.as_deref_mut() {
            ts.record_sample(self.now_us, self.node.index());
        }
        self.field.reading(self.node, attr, self.now())
    }

    /// Records that this node is holding results it has no live route for
    /// (orphaned by upstream failures). Feeds the completeness accounting's
    /// orphaned-node counters.
    pub fn record_orphaned(&mut self) {
        self.metrics.record_orphaned_drop(self.node.index());
    }

    /// Puts the radio to sleep until `now + duration_ms`: no frames are
    /// received while asleep (timers still fire — the clock keeps running).
    pub fn sleep_for(&mut self, duration_ms: u64) {
        self.actions.push(Action::Sleep { duration_ms });
    }

    /// Wakes the radio immediately (cancels a pending sleep).
    pub fn wake(&mut self) {
        self.actions.push(Action::Wake);
    }

    /// Emits a record toward the outside world (visible via
    /// [`Simulator::outputs`]).
    pub fn emit(&mut self, output: O) {
        self.outputs.push(OutputRecord {
            time: self.now(),
            node: self.node,
            output,
        });
    }

    /// Whether a trace sink is attached. Apps check this before building an
    /// event, so disabled tracing costs one branch and zero allocations.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Records an application-level trace event at the current simulation
    /// time (no-op when tracing is disabled).
    pub fn trace(&self, event: TraceEvent) {
        self.trace.emit(self.now_us, event);
    }

    /// A deterministic pseudo-random `u64` from the simulation's seed.
    pub fn rand_u64(&mut self) -> u64 {
        next_rand(self.rng_state)
    }

    /// A deterministic pseudo-random value in `[0, 1)`.
    pub fn rand_f64(&mut self) -> f64 {
        (self.rand_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug)]
enum Action<P> {
    Send {
        dest: Destination,
        kind: MsgKind,
        payload_bytes: usize,
        payload: Arc<P>,
    },
    SetTimer {
        delay_ms: u64,
        key: u64,
    },
    Sleep {
        duration_ms: u64,
    },
    Wake,
}

#[derive(Debug)]
enum EventKind<C> {
    Timer {
        node: NodeId,
        key: u64,
    },
    /// All deliveries of one frame. The per-receiver deliveries of a frame
    /// always popped back-to-back in neighbour order under the old
    /// one-event-per-receiver scheme (their seqs were contiguous at the same
    /// `end_us`, so nothing could interleave), so a single event iterating
    /// receivers in that order is observationally identical — and cuts heap
    /// traffic by the fan-out factor.
    Deliver {
        frame: usize,
    },
    Command {
        node: NodeId,
        cmd: C,
    },
    Maintenance {
        node: NodeId,
    },
    Fail {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
}

/// One in-flight transmission, stored in the frame slab. The slot is
/// recycled once the frame's `Deliver` event has fired (or immediately, if
/// nothing is in range).
#[derive(Debug)]
struct FrameState<P> {
    src: NodeId,
    dest: Destination,
    kind: MsgKind,
    payload_bytes: usize,
    /// `None` for engine-generated maintenance beacons. Shared (not cloned)
    /// across the frame's receivers and retransmissions.
    payload: Option<Arc<P>>,
    start_us: u64,
    end_us: u64,
    retries_left: u32,
    /// Receivers at which this frame was corrupted by a collision. Bounded
    /// by the fan-out, cleared when the slot is released (so a recycled slot
    /// cannot inherit markers), capacity recycled with the slot.
    corrupted: Vec<NodeId>,
}

/// Engine-level configuration beyond the radio itself.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all randomness (loss, jitter).
    pub seed: u64,
    /// If set, every node broadcasts a maintenance beacon with this period
    /// (ms), phase-staggered per node — the paper's "periodical network
    /// maintenance messages".
    pub maintenance_interval_ms: Option<u64>,
    /// Payload bytes of a maintenance beacon.
    pub maintenance_bytes: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            maintenance_interval_ms: Some(30_000),
            maintenance_bytes: 8,
        }
    }
}

/// Counters describing the engine's own hot-path behaviour (as opposed to
/// the simulated network's [`Metrics`]). Exposed for benchmarks and
/// regression tracking via [`Simulator::engine_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events popped from the queue so far (timers, deliveries, commands,
    /// maintenance, failures).
    pub events_processed: u64,
    /// Frames ever put on the air (slab allocations, including recycled
    /// slots).
    pub frames_total: u64,
    /// Current slab length — the peak number of concurrently in-flight
    /// frames so far, since slots are recycled before the slab grows.
    pub frame_slab_len: usize,
    /// High-water mark of the slab (equals `frame_slab_len`; kept separate
    /// so reports stay meaningful if the slab ever learns to shrink).
    pub frame_slab_high_water: usize,
    /// Frames currently in flight (allocated slots minus free list).
    pub frames_in_flight: usize,
    /// Transmissions whose carrier-sense loop hit the deferral budget
    /// (`RadioParams::csma_max_deferrals`) and fell through to
    /// transmit-with-collision.
    pub csma_capped_deferrals: u64,
    /// Carrier-sense scans that read the sender's pre-sorted `incoming` list
    /// in place — each one a per-transmit copy + sort the old scratch-buffer
    /// path would have paid.
    pub csma_sorts_saved: u64,
    /// Timer events processed (per-phase breakdown of `events_processed`).
    pub timer_events: u64,
    /// Frame-delivery events processed (one per frame fan-out).
    pub deliver_events: u64,
    /// External command events processed.
    pub command_events: u64,
    /// Maintenance-beacon events processed.
    pub maintenance_events: u64,
    /// Fault events processed (crashes + recoveries).
    pub fault_events: u64,
}

/// Factory building a node's application, used at start and on reboot.
type AppFactory<A> = Box<dyn FnMut(NodeId, &Topology) -> A + Send>;

/// The discrete-event simulator: one [`NodeApp`] per node plus the radio,
/// field, metrics and event queue.
///
/// # Examples
///
/// See the crate-level documentation for a complete runnable example.
pub struct Simulator<A: NodeApp> {
    nodes: Vec<A>,
    factory: AppFactory<A>,
    /// Per-node crash flag: a failed node neither receives nor transmits and
    /// its timers are dropped; on recovery it reboots with fresh app state.
    failed: Vec<bool>,
    topology: Topology,
    radio: RadioParams,
    config: SimConfig,
    field: Box<dyn SensorField + Send + Sync>,
    metrics: Metrics,
    outputs: Vec<OutputRecord<A::Output>>,
    /// The event queue: a calendar queue popping in strict `(time_us, seq)`
    /// order — bit-identical to the `BinaryHeap<Reverse<Event>>` it replaced
    /// (the golden determinism snapshots pin this), but amortized O(1) per
    /// operation with one-bucket cache locality at big-grid queue depths.
    queue: CalendarQueue<EventKind<A::Command>>,
    /// Frame slab: slots are recycled through `free_frames` once all of a
    /// frame's deliveries have fired, so `frames.len()` tracks peak
    /// in-flight frames rather than total transmissions.
    frames: Vec<FrameState<A::Payload>>,
    /// Indices of free slots in `frames`.
    free_frames: Vec<usize>,
    /// Reused by `dispatch_callback` for every [`Ctx`]'s action queue.
    action_scratch: Vec<Action<A::Payload>>,
    /// Per-node earliest time the transmitter is free, µs.
    tx_ready_at_us: Vec<u64>,
    /// Per-node sleep deadline, µs (0 = awake).
    sleep_until_us: Vec<u64>,
    /// Per-node in-flight incoming frames, sorted ascending in a flat arena
    /// (see [`IncomingArena`]) so the CSMA carrier-sense scan reads a node's
    /// block in place — no per-transmit copy or sort — and the
    /// interference-marking loop touches cache-resident contiguous blocks
    /// instead of 12 scattered heap buffers per transmit.
    incoming: IncomingArena,
    /// Loss-side fault elements, installed by [`Simulator::install_fault_plan`].
    /// `None` (the default) keeps the delivery path byte-identical to a
    /// fault-free engine: one branch, no extra RNG draws.
    faults: Option<FaultOverlay>,
    /// Trace emission handle; the default (disabled) handle costs one branch
    /// per emission site and never allocates or draws RNG.
    trace: TraceHandle,
    /// Windowed time-series recorder mirroring every metrics delta, bucketed
    /// by event time. `None` (the default) costs one branch per mirror site
    /// and keeps runs bit-for-bit identical; enabled recording never draws
    /// RNG either, so it holds both ways (the `TraceHandle` contract).
    timeseries: Option<Box<WindowRecorder>>,
    /// Profiling handle shared with the runner; disabled by default. Like
    /// tracing, profiling never draws RNG or branches on simulated state,
    /// so runs are bit-identical either way.
    profile: ProfileHandle,
    /// Lock-free per-run profiling accumulator, present iff `profile` is
    /// enabled; flushed into the handle once per `run_until` call.
    profile_scratch: Option<Box<ProfileScratch>>,
    now_us: u64,
    seq: u64,
    rng_state: u64,
    started: bool,
    events_processed: u64,
    frames_total: u64,
    slab_high_water: usize,
    csma_capped: u64,
    csma_sorts_saved: u64,
    /// Per-phase event counters indexed by [`EnginePhase::index`] — the
    /// breakdown behind `events_processed`.
    phase_events: [u64; EnginePhase::COUNT],
    /// Watermark of `phase_events` already credited to the profiler, so the
    /// hot loop never increments a profiler counter per event: the delta is
    /// credited in bulk when the scratch is flushed.
    profile_credited: [u64; EnginePhase::COUNT],
}

impl<A: NodeApp> Simulator<A> {
    /// Builds a simulator, constructing one app per node via `factory`.
    pub fn new<F>(
        topology: Topology,
        radio: RadioParams,
        config: SimConfig,
        field: Box<dyn SensorField + Send + Sync>,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(NodeId, &Topology) -> A + Send + 'static,
    {
        let n = topology.node_count();
        let nodes: Vec<A> = topology.nodes().map(|id| factory(id, &topology)).collect();
        let rng_state = config.seed;
        Simulator {
            nodes,
            factory: Box::new(factory),
            failed: vec![false; n],
            metrics: Metrics::new(n),
            outputs: Vec::new(),
            queue: CalendarQueue::new(),
            frames: Vec::new(),
            free_frames: Vec::new(),
            action_scratch: Vec::new(),
            tx_ready_at_us: vec![0; n],
            sleep_until_us: vec![0; n],
            incoming: IncomingArena::new(n),
            faults: None,
            trace: TraceHandle::disabled(),
            timeseries: None,
            profile: ProfileHandle::disabled(),
            profile_scratch: None,
            now_us: 0,
            seq: 0,
            rng_state,
            started: false,
            events_processed: 0,
            frames_total: 0,
            slab_high_water: 0,
            csma_capped: 0,
            csma_sorts_saved: 0,
            phase_events: [0; EnginePhase::COUNT],
            profile_credited: [0; EnginePhase::COUNT],
            topology,
            radio,
            config,
            field,
        }
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Engine hot-path counters: events processed, frame-slab occupancy and
    /// high-water mark, carrier-sense cap hits.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            frames_total: self.frames_total,
            frame_slab_len: self.frames.len(),
            frame_slab_high_water: self.slab_high_water,
            frames_in_flight: self.frames.len() - self.free_frames.len(),
            csma_capped_deferrals: self.csma_capped,
            csma_sorts_saved: self.csma_sorts_saved,
            timer_events: self.phase_events[EnginePhase::Timer.index()],
            deliver_events: self.phase_events[EnginePhase::Deliver.index()],
            command_events: self.phase_events[EnginePhase::Command.index()],
            maintenance_events: self.phase_events[EnginePhase::Maintenance.index()],
            fault_events: self.phase_events[EnginePhase::Fault.index()],
        }
    }

    /// Attaches (or detaches, with [`TraceHandle::disabled`]) the trace
    /// sink. The engine and app callbacks emit structured [`TraceEvent`]s
    /// through it; with the default disabled handle every emission site is a
    /// single branch and the run is bit-for-bit identical to an untraced one
    /// (tracing never draws from the simulation RNG, so this holds for
    /// enabled sinks too).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attaches (or detaches, with [`ProfileHandle::disabled`]) the
    /// profiling handle. The engine attributes each processed event's wall
    /// time to its [`EnginePhase`] (one clock read per event into a
    /// lock-free scratch, flushed per `run_until` call) plus nested
    /// CSMA-sense and interference-marking sub-spans. Profiling never draws
    /// from the simulation RNG and never branches on simulated state, so
    /// runs are bit-for-bit identical with or without it.
    pub fn set_profile(&mut self, profile: ProfileHandle) {
        self.profile_scratch = profile.scratch();
        // Events processed before the profiler attached are not its to
        // count: start crediting from the current watermark.
        self.profile_credited = self.phase_events;
        self.profile = profile;
    }

    /// Installs (or removes, with `None`) a windowed time-series recorder.
    /// Every metrics delta the engine records from now on is mirrored into
    /// it, bucketed by event time; retrieve the finished series with
    /// [`Simulator::take_timeseries`]. Recording never draws from the
    /// simulation RNG, so runs are bit-for-bit identical with or without it.
    pub fn set_timeseries(&mut self, recorder: Option<Box<WindowRecorder>>) {
        self.timeseries = recorder;
    }

    /// Detaches and returns the time-series recorder installed via
    /// [`Simulator::set_timeseries`], if any.
    pub fn take_timeseries(&mut self) -> Option<Box<WindowRecorder>> {
        self.timeseries.take()
    }

    /// Records emitted by nodes so far.
    pub fn outputs(&self) -> &[OutputRecord<A::Output>] {
        &self.outputs
    }

    /// Removes and returns all emitted records.
    pub fn take_outputs(&mut self) -> Vec<OutputRecord<A::Output>> {
        std::mem::take(&mut self.outputs)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ms(self.now_us / 1000)
    }

    /// Immutable access to a node's app (for assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &A {
        &self.nodes[node.index()]
    }

    /// Schedules an external command for `node` at absolute time `at`.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: A::Command) {
        let time_us = (at.as_ms() * 1000).max(self.now_us);
        self.push_event(time_us, EventKind::Command { node, cmd });
    }

    /// Crashes `node` at time `at`: it stops transmitting, receiving and
    /// processing timers until recovered. Commands addressed to it are lost.
    pub fn schedule_failure(&mut self, at: SimTime, node: NodeId) {
        let time_us = (at.as_ms() * 1000).max(self.now_us);
        self.push_event(time_us, EventKind::Fail { node });
    }

    /// Reboots a failed node at time `at` with *fresh* application state
    /// (volatile state such as installed queries is lost, as on a real mote).
    pub fn schedule_recovery(&mut self, at: SimTime, node: NodeId) {
        let time_us = (at.as_ms() * 1000).max(self.now_us);
        self.push_event(time_us, EventKind::Recover { node });
    }

    /// Whether `node` is currently failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.index()]
    }

    /// Applies a [`FaultPlan`]: schedules its crash/recovery timeline
    /// (materialized against this simulator's topology with the plan's own
    /// seed) and installs its loss overlay on the delivery path. An empty
    /// plan is a no-op — the event queue, RNG stream and delivery path stay
    /// exactly as they were, so fault-free runs are bit-for-bit unchanged.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        let schedule = plan.materialize(&self.topology);
        for c in schedule.crashes() {
            self.schedule_failure(SimTime::from_ms(c.at_ms), c.node);
            if let Some(r) = c.recover_at_ms {
                self.schedule_recovery(SimTime::from_ms(r), c.node);
            }
        }
        self.faults = plan.overlay(&self.topology);
    }

    fn push_event(&mut self, time_us: u64, kind: EventKind<A::Command>) {
        self.seq += 1;
        self.queue.push(time_us, self.seq, kind);
    }

    /// Takes a slab slot for `frame`, recycling a free one if possible.
    fn alloc_frame(&mut self, frame: FrameState<A::Payload>) -> usize {
        self.frames_total += 1;
        match self.free_frames.pop() {
            Some(idx) => {
                // Field-wise assignment keeps the slot's corruption-list
                // capacity alive across reuse (`frame.corrupted` is a fresh
                // empty Vec that never allocated).
                let slot = &mut self.frames[idx];
                debug_assert!(slot.corrupted.is_empty(), "recycled slot has markers");
                slot.src = frame.src;
                slot.dest = frame.dest;
                slot.kind = frame.kind;
                slot.payload_bytes = frame.payload_bytes;
                slot.payload = frame.payload;
                slot.start_us = frame.start_us;
                slot.end_us = frame.end_us;
                slot.retries_left = frame.retries_left;
                idx
            }
            None => {
                self.frames.push(frame);
                self.slab_high_water = self.slab_high_water.max(self.frames.len());
                self.frames.len() - 1
            }
        }
    }

    /// Returns a slot whose deliveries have all fired to the free list. The
    /// payload `Arc` is dropped now; the slot struct itself is reused.
    fn release_frame(&mut self, idx: usize) {
        self.frames[idx].payload = None;
        self.frames[idx].corrupted.clear();
        self.free_frames.push(idx);
    }

    /// Runs the simulation until `t_end` (inclusive of events at `t_end`).
    ///
    /// The first call invokes every node's [`NodeApp::on_start`] and arms the
    /// maintenance schedule. May be called repeatedly with increasing times.
    pub fn run_until(&mut self, t_end: SimTime) {
        let end_us = t_end.as_ms() * 1000;
        if !self.started {
            self.started = true;
            for id in 0..self.nodes.len() {
                self.dispatch_callback(NodeId(id as u16), Callback::Start);
            }
            if let Some(interval) = self.config.maintenance_interval_ms {
                for id in 0..self.nodes.len() {
                    // Stagger phases deterministically to avoid a thundering
                    // herd of synchronized beacons.
                    let phase = next_rand(&mut self.rng_state) % (interval * 1000);
                    self.push_event(
                        phase,
                        EventKind::Maintenance {
                            node: NodeId(id as u16),
                        },
                    );
                }
            }
        }
        // Detach the profiler's sampling cursor into a local so the
        // unsampled per-event path is a register increment and a branch
        // rather than a read-modify-write through the scratch box. Every
        // SAMPLE_INTERVAL-th event is bracketed with a timestamp pair and
        // the report extrapolates wall time from the sample; exact event
        // counts are credited from `phase_events` after the loop (see the
        // profile module's overhead budget).
        let mut prof_seen = self
            .profile_scratch
            .as_deref()
            .map(ProfileScratch::take_seen);
        while let Some((time_us, _)) = self.queue.peek() {
            if time_us > end_us {
                break;
            }
            let (time_us, _, kind) = self.queue.pop().expect("peeked event exists");
            self.now_us = time_us;
            self.events_processed += 1;
            let t0 = prof_seen.as_mut().and_then(profile::sample_event);
            let phase = self.process_event(kind);
            self.phase_events[phase.index()] += 1;
            if let Some(t0) = t0 {
                if let Some(scratch) = self.profile_scratch.as_deref_mut() {
                    scratch.event_end(ProfilePhase::from(phase), t0);
                }
            }
        }
        if let Some(scratch) = self.profile_scratch.as_deref_mut() {
            if let Some(seen) = prof_seen {
                scratch.store_seen(seen);
            }
            for p in EnginePhase::ALL {
                let i = p.index();
                scratch.credit(
                    ProfilePhase::from(p),
                    self.phase_events[i] - self.profile_credited[i],
                );
                self.profile_credited[i] = self.phase_events[i];
            }
            self.profile.absorb(scratch);
        }
        self.now_us = end_us;
        self.metrics.set_horizon(t_end);
    }

    /// Handles one popped event, returning the [`EnginePhase`] it belongs
    /// to. The match is exhaustive and every arm names its phase, so a new
    /// event kind cannot ship uncounted (and unprofiled).
    fn process_event(&mut self, kind: EventKind<A::Command>) -> EnginePhase {
        match kind {
            EventKind::Timer { node, key } => {
                if !self.failed[node.index()] {
                    self.dispatch_callback(node, Callback::Timer(key));
                }
                EnginePhase::Timer
            }
            EventKind::Command { node, cmd } => {
                if !self.failed[node.index()] {
                    self.dispatch_callback(node, Callback::Command(cmd));
                }
                EnginePhase::Command
            }
            EventKind::Deliver { frame } => {
                self.handle_delivery(frame);
                EnginePhase::Deliver
            }
            EventKind::Fail { node } => {
                if self.trace.is_enabled() {
                    self.trace
                        .emit(self.now_us, TraceEvent::FaultCrash { node });
                }
                self.failed[node.index()] = true;
                // A crash ends any ongoing nap; retract the unspent part
                // that was credited in full when the nap was planned, as
                // `Action::Wake` does. (A failed node draws no power, so
                // leaving the unspent nap credited would overstate sleep
                // time and understate idle-listening energy after
                // recovery.)
                let pending = self.sleep_until_us[node.index()].saturating_sub(self.now_us);
                self.metrics
                    .record_sleep(node.index(), -(pending as f64) / 1000.0);
                if let Some(ts) = self.timeseries.as_deref_mut() {
                    ts.record_sleep(self.now_us, node.index(), -(pending as f64) / 1000.0);
                }
                self.sleep_until_us[node.index()] = 0;
                EnginePhase::Fault
            }
            EventKind::Recover { node } => {
                if self.failed[node.index()] {
                    if self.trace.is_enabled() {
                        self.trace
                            .emit(self.now_us, TraceEvent::FaultRecover { node });
                    }
                    self.failed[node.index()] = false;
                    self.tx_ready_at_us[node.index()] = self.now_us;
                    self.nodes[node.index()] = (self.factory)(node, &self.topology);
                    self.dispatch_callback(node, Callback::Start);
                }
                EnginePhase::Fault
            }
            EventKind::Maintenance { node } => {
                if self.failed[node.index()] {
                    // A dead node beacons nothing; re-arm for later.
                    let interval = self
                        .config
                        .maintenance_interval_ms
                        .expect("maintenance enabled");
                    self.push_event(
                        self.now_us + interval * 1000,
                        EventKind::Maintenance { node },
                    );
                    return EnginePhase::Maintenance;
                }
                self.transmit(
                    node,
                    Destination::Broadcast,
                    MsgKind::Maintenance,
                    self.config.maintenance_bytes,
                    None,
                    self.now_us,
                    0,
                );
                let interval = self
                    .config
                    .maintenance_interval_ms
                    .expect("maintenance enabled");
                self.push_event(
                    self.now_us + interval * 1000,
                    EventKind::Maintenance { node },
                );
                EnginePhase::Maintenance
            }
        }
    }

    fn dispatch_callback(&mut self, node: NodeId, cb: Callback<A::Command, A::Payload>) {
        // The action queue is engine-owned scratch: taken for the duration
        // of the callback, drained, and put back — one allocation for the
        // whole run instead of one per sending callback.
        let mut actions = std::mem::take(&mut self.action_scratch);
        debug_assert!(actions.is_empty());
        {
            let app = &mut self.nodes[node.index()];
            let mut ctx = Ctx {
                node,
                now_us: self.now_us,
                topology: &self.topology,
                field: self.field.as_ref(),
                metrics: &mut self.metrics,
                outputs: &mut self.outputs,
                actions: &mut actions,
                rng_state: &mut self.rng_state,
                trace: &self.trace,
                timeseries: &mut self.timeseries,
            };
            match cb {
                Callback::Start => app.on_start(&mut ctx),
                Callback::Timer(key) => app.on_timer(&mut ctx, key),
                Callback::Command(cmd) => app.on_command(&mut ctx, cmd),
                Callback::Message {
                    from,
                    kind,
                    payload,
                    intended,
                } => {
                    if intended {
                        app.on_message(&mut ctx, from, kind, &payload)
                    } else {
                        app.on_overhear(&mut ctx, from, kind, &payload)
                    }
                }
                Callback::SendFailed { dest, kind } => app.on_send_failed(&mut ctx, dest, kind),
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    dest,
                    kind,
                    payload_bytes,
                    payload,
                } => {
                    self.transmit(
                        node,
                        dest,
                        kind,
                        payload_bytes,
                        Some(payload),
                        self.now_us,
                        self.radio.max_retries,
                    );
                }
                Action::SetTimer { delay_ms, key } => {
                    self.push_event(
                        self.now_us + delay_ms * 1000,
                        EventKind::Timer { node, key },
                    );
                }
                Action::Sleep { duration_ms } => {
                    if self.trace.is_enabled() {
                        self.trace
                            .emit(self.now_us, TraceEvent::SleepStart { node, duration_ms });
                    }
                    // Re-planning an ongoing nap: retract the unspent part.
                    let pending = self.sleep_until_us[node.index()].saturating_sub(self.now_us);
                    self.metrics
                        .record_sleep(node.index(), duration_ms as f64 - pending as f64 / 1000.0);
                    if let Some(ts) = self.timeseries.as_deref_mut() {
                        ts.record_sleep(
                            self.now_us,
                            node.index(),
                            duration_ms as f64 - pending as f64 / 1000.0,
                        );
                    }
                    self.sleep_until_us[node.index()] = self.now_us + duration_ms * 1000;
                }
                Action::Wake => {
                    if self.trace.is_enabled() {
                        self.trace.emit(self.now_us, TraceEvent::Wake { node });
                    }
                    let pending = self.sleep_until_us[node.index()].saturating_sub(self.now_us);
                    self.metrics
                        .record_sleep(node.index(), -(pending as f64) / 1000.0);
                    if let Some(ts) = self.timeseries.as_deref_mut() {
                        ts.record_sleep(self.now_us, node.index(), -(pending as f64) / 1000.0);
                    }
                    self.sleep_until_us[node.index()] = 0;
                }
            }
        }
        self.action_scratch = actions;
    }

    fn is_asleep(&self, node: NodeId) -> bool {
        self.sleep_until_us[node.index()] > self.now_us
    }

    /// Puts a frame on the air from `src` no earlier than `earliest_us`.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        src: NodeId,
        dest: Destination,
        kind: MsgKind,
        payload_bytes: usize,
        payload: Option<Arc<A::Payload>>,
        earliest_us: u64,
        retries_left: u32,
    ) {
        if self.failed[src.index()] {
            return; // a dead node transmits nothing (incl. pending retries)
        }
        let total_bytes = payload_bytes + self.radio.header_bytes;
        let dur_us = (self.radio.tx_time_ms(payload_bytes) * 1000.0).round() as u64;
        let mut start_us = earliest_us.max(self.tx_ready_at_us[src.index()]);
        if self.radio.collisions {
            // Nested profiling sub-span: this time also stays inside the
            // enclosing event's slice (the profiler's delta scheme), so the
            // two must not be summed. Sampled — only every SPAN_SAMPLE-th
            // occurrence reads a timestamp.
            let csma_t0 = self
                .profile_scratch
                .as_deref_mut()
                .and_then(|s| s.span_begin(ProfilePhase::CsmaSense));
            // CSMA: carrier-sense at the sender — defer past any frame
            // currently audible here, plus a short random inter-frame gap.
            // Hidden terminals (senders out of each other's range colliding
            // at a common receiver) remain possible, as on real motes. The
            // deferral budget (`RadioParams::csma_max_deferrals`) bounds the
            // loop under pathological backlogs.
            let cap = self.radio.csma_max_deferrals;
            // `incoming` is kept sorted on insert, so the scan reads it in
            // place in the same (start, end) order the per-transmit
            // copy-and-sort used to produce; equal keys are indistinguishable
            // to the scan, so the RNG draw sequence — and every downstream
            // bit — is unchanged.
            self.csma_sorts_saved += 1;
            let mut deferrals = 0u32;
            let mut deferred = true;
            while deferred && deferrals < cap {
                deferred = false;
                for &audible in self.incoming.node(src.index()) {
                    let (s, e) = (audible.start_us, audible.end_us());
                    if s < start_us + dur_us && start_us < e {
                        start_us = e + 200 + next_rand(&mut self.rng_state) % 800;
                        deferred = true;
                        deferrals += 1;
                        if deferrals >= cap {
                            break;
                        }
                    }
                }
            }
            if deferrals >= cap && deferrals > 0 {
                self.csma_capped += 1;
            }
            if deferrals > 0 && self.trace.is_enabled() {
                self.trace.emit(
                    self.now_us,
                    TraceEvent::CsmaDeferred {
                        node: src,
                        deferrals,
                        capped: deferrals >= cap,
                    },
                );
            }
            if let (Some(t0), Some(scratch)) = (csma_t0, self.profile_scratch.as_deref_mut()) {
                scratch.span_end(ProfilePhase::CsmaSense, t0);
            }
        }
        let end_us = start_us + dur_us;
        self.tx_ready_at_us[src.index()] = end_us;
        self.metrics
            .record_tx(src.index(), kind, total_bytes, dur_us as f64 / 1000.0);
        if let Some(ts) = self.timeseries.as_deref_mut() {
            // Bucketed by airtime start, like the FrameTx trace event.
            ts.record_tx(start_us, src.index(), kind, dur_us as f64 / 1000.0);
        }
        if self.trace.is_enabled() {
            let tdest = match &dest {
                Destination::Broadcast => TraceDest::Broadcast,
                Destination::Unicast(d) => TraceDest::Unicast(*d),
                Destination::Multicast(ds) => TraceDest::Multicast(ds.len() as u16),
            };
            self.trace.emit(
                start_us,
                TraceEvent::FrameTx {
                    src,
                    kind,
                    dest: tdest,
                    bytes: total_bytes,
                    airtime_us: dur_us,
                },
            );
        }

        let frame_idx = self.alloc_frame(FrameState {
            src,
            dest,
            kind,
            payload_bytes,
            payload,
            start_us,
            end_us,
            retries_left,
            corrupted: Vec::new(),
        });

        // Mark interference at every in-range node. Only disjoint fields of
        // `self` are touched, so the topology's neighbour slice is iterated
        // in place (no copy) while the interference state mutates.
        let fanout = self.topology.neighbors(src).len();
        if self.radio.collisions {
            let mark_t0 = self
                .profile_scratch
                .as_deref_mut()
                .and_then(|s| s.span_begin(ProfilePhase::InterferenceMark));
            let frames = &mut self.frames;
            let entry = IncomingFrame {
                start_us,
                dur_us: dur_us as u32,
                frame: frame_idx as u32,
            };
            for &r in self.topology.neighbors(src) {
                // Interference: any concurrent in-range frame corrupts both.
                // One fused arena pass drops expired entries, reports the
                // overlaps, and slots this frame in sorted position — the
                // CSMA scan at the sender reads the block in place, so it
                // must stay ascending.
                self.incoming
                    .retain_mark_insert(r.index(), start_us, entry, |other| {
                        let mine = &mut frames[frame_idx].corrupted;
                        if !mine.contains(&r) {
                            mine.push(r);
                        }
                        let theirs = &mut frames[other as usize].corrupted;
                        if !theirs.contains(&r) {
                            theirs.push(r);
                        }
                    });
            }
            if let (Some(t0), Some(scratch)) = (mark_t0, self.profile_scratch.as_deref_mut()) {
                scratch.span_end(ProfilePhase::InterferenceMark, t0);
            }
        }
        if fanout == 0 {
            // Nothing in range: the frame is spent the moment it airs.
            self.release_frame(frame_idx);
        } else {
            // One event covers the frame's whole fan-out; receivers are
            // walked in neighbour order when it fires (see EventKind).
            self.push_event(end_us, EventKind::Deliver { frame: frame_idx });
        }
    }

    /// Fires all of a frame's deliveries, walking receivers in neighbour
    /// order (the order their one-event-per-receiver equivalents popped in),
    /// then recycles the frame's slab slot.
    fn handle_delivery(&mut self, frame_idx: usize) {
        let (src, kind, payload_bytes, dur_ms, retries_left) = {
            let f = &self.frames[frame_idx];
            (
                f.src,
                f.kind,
                f.payload_bytes,
                (f.end_us - f.start_us) as f64 / 1000.0,
                f.retries_left,
            )
        };
        // App callbacks below can transmit (growing or recycling the slab),
        // so the neighbour list is re-borrowed per receiver by index; this
        // frame's own slot cannot be recycled until the release at the end.
        // The frame's routing fields, by contrast, are frozen for the whole
        // fan-out — a frame that has left the air can no longer be corrupted
        // (every later transmission starts at or after `now`, past this
        // frame's end), and `dest`/`payload` are never written after
        // allocation — so they move out of the slab once instead of being
        // re-borrowed per receiver; `dest` and the corruption list go back
        // before the release so the slot recycles with its capacity.
        let fanout = self.topology.neighbors(src).len();
        let dest = std::mem::replace(&mut self.frames[frame_idx].dest, Destination::Broadcast);
        let corrupted_at = std::mem::take(&mut self.frames[frame_idx].corrupted);
        let frame_payload = self.frames[frame_idx].payload.clone();
        let is_unicast = matches!(dest, Destination::Unicast(_));
        for i in 0..fanout {
            let receiver = self.topology.neighbors(src)[i];
            let intended = dest.includes(receiver);
            let corrupted = !corrupted_at.is_empty() && corrupted_at.contains(&receiver);

            if self.is_asleep(receiver) || self.failed[receiver.index()] {
                // The radio is off (or the node is dead): the frame is missed.
                if intended && self.trace.is_enabled() {
                    self.trace.emit(
                        self.now_us,
                        TraceEvent::FrameMissed {
                            src,
                            node: receiver,
                            kind,
                            asleep: self.is_asleep(receiver),
                        },
                    );
                }
                if intended && is_unicast {
                    let payload = frame_payload.clone();
                    self.retry_or_give_up(
                        src,
                        receiver,
                        kind,
                        payload_bytes,
                        payload,
                        retries_left,
                    );
                }
                continue;
            }
            self.metrics.record_rx(receiver.index(), dur_ms);
            if let Some(ts) = self.timeseries.as_deref_mut() {
                ts.record_rx(self.now_us, receiver.index(), dur_ms);
            }

            let mut loss_prob = if self.radio.distance_loss {
                let d = self
                    .topology
                    .position(src)
                    .distance(self.topology.position(receiver));
                self.radio.loss_at(d, self.topology.radio_range())
            } else {
                self.radio.loss_rate
            };
            if let Some(overlay) = &self.faults {
                loss_prob = overlay.loss_prob(loss_prob, receiver.index(), self.now_us);
            }
            let lost =
                !corrupted && loss_prob > 0.0 && next_rand_f64(&mut self.rng_state) < loss_prob;
            if corrupted {
                self.metrics.record_collision();
                if let Some(ts) = self.timeseries.as_deref_mut() {
                    ts.record_collision(self.now_us);
                }
                if self.trace.is_enabled() {
                    self.trace.emit(
                        self.now_us,
                        TraceEvent::FrameCollision {
                            src,
                            node: receiver,
                            kind,
                        },
                    );
                }
            }
            if lost {
                self.metrics.record_loss();
                if let Some(ts) = self.timeseries.as_deref_mut() {
                    ts.record_loss(self.now_us);
                }
                if self.trace.is_enabled() {
                    self.trace.emit(
                        self.now_us,
                        TraceEvent::FrameLost {
                            src,
                            node: receiver,
                            kind,
                        },
                    );
                }
            }
            if corrupted || lost {
                if intended && is_unicast {
                    let payload = frame_payload.clone();
                    self.retry_or_give_up(
                        src,
                        receiver,
                        kind,
                        payload_bytes,
                        payload,
                        retries_left,
                    );
                }
                continue;
            }

            let Some(payload) = frame_payload.clone() else {
                // Engine-generated beacon: accounted, not delivered to the app.
                continue;
            };
            if self.trace.is_enabled() {
                self.trace.emit(
                    self.now_us,
                    TraceEvent::FrameDelivered {
                        src,
                        node: receiver,
                        kind,
                        intended,
                    },
                );
            }
            self.dispatch_callback(
                receiver,
                Callback::Message {
                    from: src,
                    kind,
                    payload,
                    intended,
                },
            );
        }
        self.frames[frame_idx].dest = dest;
        self.frames[frame_idx].corrupted = corrupted_at;
        self.release_frame(frame_idx);
    }

    /// Re-queues a missed unicast frame to `receiver` (the sole intended
    /// recipient) or gives up once its retry budget is spent. The payload
    /// `Arc` is shared with the original transmission, not copied.
    fn retry_or_give_up(
        &mut self,
        src: NodeId,
        receiver: NodeId,
        kind: MsgKind,
        payload_bytes: usize,
        payload: Option<Arc<A::Payload>>,
        retries_left: u32,
    ) {
        if retries_left == 0 {
            self.metrics.record_gave_up();
            if let Some(ts) = self.timeseries.as_deref_mut() {
                ts.record_gave_up(self.now_us);
            }
            if self.trace.is_enabled() {
                self.trace.emit(
                    self.now_us,
                    TraceEvent::FrameGaveUp {
                        src,
                        node: receiver,
                        kind,
                    },
                );
            }
            if !self.failed[src.index()] {
                self.dispatch_callback(
                    src,
                    Callback::SendFailed {
                        dest: receiver,
                        kind,
                    },
                );
            }
            return;
        }
        self.metrics.record_retransmission();
        if let Some(ts) = self.timeseries.as_deref_mut() {
            ts.record_retransmission(self.now_us);
        }
        if self.trace.is_enabled() {
            self.trace.emit(
                self.now_us,
                TraceEvent::FrameRetry {
                    src,
                    node: receiver,
                    kind,
                    retries_left: retries_left - 1,
                },
            );
        }
        // Random backoff with a window that doubles per attempt, so two
        // colliding senders eventually desynchronize by more than one frame
        // time (binary exponential backoff).
        let attempt = self.radio.max_retries.saturating_sub(retries_left) + 1;
        let window_us = 16_000u64 << attempt.min(6);
        let backoff_us = 1000 + next_rand(&mut self.rng_state) % window_us;
        self.transmit(
            src,
            Destination::Unicast(receiver),
            kind,
            payload_bytes,
            payload,
            self.now_us + backoff_us,
            retries_left - 1,
        );
    }
}

impl<A: NodeApp> Debug for Simulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now())
            .field("pending_events", &self.queue.len())
            .field("frames_total", &self.frames_total)
            .field("frame_slab_high_water", &self.slab_high_water)
            .finish_non_exhaustive()
    }
}

enum Callback<C, P> {
    Start,
    Timer(u64),
    Command(C),
    Message {
        from: NodeId,
        kind: MsgKind,
        payload: Arc<P>,
        intended: bool,
    },
    SendFailed {
        dest: NodeId,
        kind: MsgKind,
    },
}

fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn next_rand_f64(state: &mut u64) -> f64 {
    (next_rand(state) >> 11) as f64 / (1u64 << 53) as f64
}

use crate::snapshot::{
    Restorable, SnapReader, SnapWriter, Snapshot, SnapshotBuilder, SnapshotDocument, SnapshotError,
    SECTION_SIMULATOR,
};

impl<C: Snapshot> Snapshot for EventKind<C> {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            EventKind::Timer { node, key } => {
                w.put_u8(0);
                node.write(w);
                w.put_u64(*key);
            }
            EventKind::Deliver { frame } => {
                w.put_u8(1);
                w.put_usize(*frame);
            }
            EventKind::Command { node, cmd } => {
                w.put_u8(2);
                node.write(w);
                cmd.write(w);
            }
            EventKind::Maintenance { node } => {
                w.put_u8(3);
                node.write(w);
            }
            EventKind::Fail { node } => {
                w.put_u8(4);
                node.write(w);
            }
            EventKind::Recover { node } => {
                w.put_u8(5);
                node.write(w);
            }
        }
    }
}

impl<C: Restorable> Restorable for EventKind<C> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => EventKind::Timer {
                node: NodeId::read(r)?,
                key: r.u64()?,
            },
            1 => EventKind::Deliver { frame: r.usize()? },
            2 => EventKind::Command {
                node: NodeId::read(r)?,
                cmd: C::read(r)?,
            },
            3 => EventKind::Maintenance {
                node: NodeId::read(r)?,
            },
            4 => EventKind::Fail {
                node: NodeId::read(r)?,
            },
            5 => EventKind::Recover {
                node: NodeId::read(r)?,
            },
            b => return Err(SnapshotError::Corrupt(format!("invalid EventKind tag {b}"))),
        })
    }
}

impl<P: Snapshot> Snapshot for FrameState<P> {
    // Free slab slots serialize like any other frame (their payload is
    // `None` and their corruption list empty after `release_frame`), so slot
    // indices referenced by pending `Deliver` events stay valid verbatim.
    fn write(&self, w: &mut SnapWriter) {
        let FrameState {
            src,
            dest,
            kind,
            payload_bytes,
            payload,
            start_us,
            end_us,
            retries_left,
            corrupted,
        } = self;
        src.write(w);
        dest.write(w);
        kind.write(w);
        w.put_usize(*payload_bytes);
        payload.write(w);
        w.put_u64(*start_us);
        w.put_u64(*end_us);
        w.put_u32(*retries_left);
        corrupted.write(w);
    }
}

impl<P: Restorable> Restorable for FrameState<P> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FrameState {
            src: NodeId::read(r)?,
            dest: Destination::read(r)?,
            kind: MsgKind::read(r)?,
            payload_bytes: r.usize()?,
            payload: Option::read(r)?,
            start_us: r.u64()?,
            end_us: r.u64()?,
            retries_left: r.u32()?,
            corrupted: Vec::read(r)?,
        })
    }
}

impl<A: NodeApp> Simulator<A> {
    /// Swaps the installed fault plan for `plan`: every pending `Fail` /
    /// `Recover` event of the previous plan is retracted (all other queue
    /// entries keep their exact `(time, seq)` keys) and the new plan's
    /// events and loss overlay are installed. This is how a restored
    /// checkpoint is *forked*: restore N times, give each copy a different
    /// plan, and the futures diverge only where the plans do.
    pub fn replace_fault_plan(&mut self, plan: &FaultPlan) {
        let mut kept = Vec::with_capacity(self.queue.len());
        while let Some((time, seq, kind)) = self.queue.pop() {
            match kind {
                EventKind::Fail { .. } | EventKind::Recover { .. } => {}
                other => kept.push((time, seq, other)),
            }
        }
        for (time, seq, kind) in kept {
            self.queue.push(time, seq, kind);
        }
        self.faults = None;
        self.install_fault_plan(plan);
    }
}

impl<A> Simulator<A>
where
    A: NodeApp + Snapshot,
    A::Payload: Snapshot,
    A::Command: Snapshot,
    A::Output: Snapshot,
{
    /// Writes the complete simulation state — apps, queue, slab, radio and
    /// RNG — as one snapshot section payload. The skipped fields are the
    /// ones a snapshot deliberately cannot carry: the app `factory` and the
    /// sensor `field` (arbitrary closures / trait objects, re-supplied at
    /// [`Simulator::restore`]; the factory must be live because node
    /// recovery rebuilds apps through it), the `trace` and `profile`
    /// handles (host-side observers, re-attached by the caller), and
    /// `action_scratch` (empty between events, which is the only place a
    /// checkpoint can be taken).
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        let Simulator {
            nodes,
            factory: _,
            failed,
            topology,
            radio,
            config,
            field: _,
            metrics,
            outputs,
            queue,
            frames,
            free_frames,
            action_scratch: _,
            tx_ready_at_us,
            sleep_until_us,
            incoming,
            faults,
            trace: _,
            timeseries,
            profile: _,
            profile_scratch: _,
            profile_credited: _,
            now_us,
            seq,
            rng_state,
            started,
            events_processed,
            frames_total,
            slab_high_water,
            csma_capped,
            csma_sorts_saved,
            phase_events,
        } = self;
        topology.write(w);
        radio.write(w);
        config.write(w);
        nodes.write(w);
        failed.write(w);
        metrics.write(w);
        outputs.write(w);
        queue.write(w);
        frames.write(w);
        free_frames.write(w);
        tx_ready_at_us.write(w);
        sleep_until_us.write(w);
        incoming.write(w);
        faults.write(w);
        timeseries.write(w);
        w.put_u64(*now_us);
        w.put_u64(*seq);
        w.put_u64(*rng_state);
        w.put_bool(*started);
        w.put_u64(*events_processed);
        w.put_u64(*frames_total);
        w.put_usize(*slab_high_water);
        w.put_u64(*csma_capped);
        w.put_u64(*csma_sorts_saved);
        phase_events.write(w);
    }

    /// Serializes the full simulation into a standalone snapshot document.
    ///
    /// Resuming via [`Simulator::restore`] and continuing is bit-identical
    /// to never having stopped: same outputs, same metrics, same RNG draws.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.write_snapshot(&mut w);
        let mut b = SnapshotBuilder::new();
        b.section(SECTION_SIMULATOR, w.as_bytes());
        b.finish()
    }
}

impl<A> Simulator<A>
where
    A: NodeApp + Restorable,
    A::Payload: Restorable,
    A::Command: Restorable,
    A::Output: Restorable,
{
    /// Decodes one simulator from a snapshot section written by
    /// [`Simulator::write_snapshot`]. `field` and `factory` re-supply the
    /// two unserializable collaborators and must match the originals (the
    /// field is drawn from on every sample; the factory rebuilds apps on
    /// node recovery). The trace and profile handles start disabled —
    /// attach them with [`Simulator::set_trace`] / [`Simulator::set_profile`]
    /// before resuming if the run was observed.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from decoding, including `Corrupt` if the
    /// decoded tables disagree with each other.
    pub fn read_snapshot<F>(
        r: &mut SnapReader<'_>,
        field: Box<dyn SensorField + Send + Sync>,
        factory: F,
    ) -> Result<Self, SnapshotError>
    where
        F: FnMut(NodeId, &Topology) -> A + Send + 'static,
    {
        let topology = Topology::read(r)?;
        let radio = RadioParams::read(r)?;
        let config = SimConfig::read(r)?;
        let nodes: Vec<A> = Vec::read(r)?;
        let failed: Vec<bool> = Vec::read(r)?;
        let metrics = Metrics::read(r)?;
        let outputs: Vec<OutputRecord<A::Output>> = Vec::read(r)?;
        let queue = CalendarQueue::read(r)?;
        let frames: Vec<FrameState<A::Payload>> = Vec::read(r)?;
        let free_frames: Vec<usize> = Vec::read(r)?;
        let tx_ready_at_us: Vec<u64> = Vec::read(r)?;
        let sleep_until_us: Vec<u64> = Vec::read(r)?;
        let incoming = IncomingArena::read(r)?;
        let faults: Option<FaultOverlay> = Option::read(r)?;
        let timeseries: Option<Box<WindowRecorder>> = Option::read(r)?;
        let now_us = r.u64()?;
        let seq = r.u64()?;
        let rng_state = r.u64()?;
        let started = r.bool()?;
        let events_processed = r.u64()?;
        let frames_total = r.u64()?;
        let slab_high_water = r.usize()?;
        let csma_capped = r.u64()?;
        let csma_sorts_saved = r.u64()?;
        // The wire stays exactly `EnginePhase::COUNT` u64s in wire order.
        let phase_events: [u64; EnginePhase::COUNT] = <[u64; EnginePhase::COUNT]>::read(r)?;

        let n = topology.node_count();
        if nodes.len() != n
            || failed.len() != n
            || tx_ready_at_us.len() != n
            || sleep_until_us.len() != n
        {
            return Err(SnapshotError::Corrupt(
                "per-node tables disagree with the topology".into(),
            ));
        }
        if free_frames.iter().any(|&i| i >= frames.len()) {
            return Err(SnapshotError::Corrupt(
                "free-frame index past the slab".into(),
            ));
        }
        Ok(Simulator {
            nodes,
            factory: Box::new(factory),
            failed,
            topology,
            radio,
            config,
            field,
            metrics,
            outputs,
            queue,
            frames,
            free_frames,
            action_scratch: Vec::new(),
            tx_ready_at_us,
            sleep_until_us,
            incoming,
            faults,
            trace: TraceHandle::disabled(),
            timeseries,
            profile: ProfileHandle::disabled(),
            profile_scratch: None,
            now_us,
            seq,
            rng_state,
            started,
            events_processed,
            frames_total,
            slab_high_water,
            csma_capped,
            csma_sorts_saved,
            phase_events,
            profile_credited: phase_events,
        })
    }

    /// Rebuilds a simulator from a [`Simulator::checkpoint`] document.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: corrupted or truncated documents, foreign
    /// magic, or a schema-version mismatch.
    pub fn restore<F>(
        bytes: &[u8],
        field: Box<dyn SensorField + Send + Sync>,
        factory: F,
    ) -> Result<Self, SnapshotError>
    where
        F: FnMut(NodeId, &Topology) -> A + Send + 'static,
    {
        let doc = SnapshotDocument::parse(bytes)?;
        let mut r = doc.section(SECTION_SIMULATOR)?;
        let sim = Self::read_snapshot(&mut r, field, factory)?;
        r.finish()?;
        Ok(sim)
    }
}
