//! Structured event tracing: the observability layer under every experiment.
//!
//! A [`TraceSink`] receives one [`TraceRecord`] per significant simulation
//! event — frame transmit/deliver/collision/loss/retry, CSMA deferrals,
//! epoch firings and shared-acquisition hits, routing events (parent death,
//! no-route resignation), sleep transitions, fault injections, Tier-1
//! `Beneficial` evaluations and merge/reoptimize decisions, and base-station
//! answer mapping. The engine and the applications emit through a
//! [`TraceHandle`]; the default handle is disabled and costs one branch per
//! event site — no allocation, no extra RNG draws, so a run with tracing
//! disabled is bit-for-bit identical to a build without the subsystem (the
//! golden determinism snapshot proves it).
//!
//! # Provenance
//!
//! Result rows already carry their origin node and epoch on the wire
//! (`RowEntry.node` + the frame's `epoch_ms`), so a [`ProvenanceId`] —
//! origin node and epoch packed into one `u64` — identifies a sample without
//! any wire-format change. Every hop a row takes emits a
//! [`TraceEvent::ResultHop`] listing the provenance ids it carries; the base
//! station's ingestion emits [`TraceEvent::ResultDelivered`] and the
//! experiment runner's answer mapping emits [`TraceEvent::AnswerMapped`].
//! An analyzer can therefore reconstruct the full path of any sample —
//! acquisition → hops → base station → per-user-query answer — and derive
//! per-query answer latency and hop-count distributions
//! ([`summarize_trace`]).
//!
//! # Formats
//!
//! [`JsonLinesSink`] writes one JSON object per record after a header line
//! carrying [`SCHEMA_VERSION`]; [`RingSink`] keeps a bounded in-memory ring
//! for tests. [`summarize_trace`] and [`chrome_trace`] consume the
//! JSON-lines text (the workspace's vendored `serde` is an API stub, so both
//! the writer and the reader are hand-rolled, like the campaign reports).

pub mod diff;

use crate::radio::MsgKind;
use crate::topology::NodeId;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use ttmqo_query::QueryId;

/// Version of every machine-readable report this workspace emits: the trace
/// JSON-lines header, all `BENCH_*.json` records, and profile JSON carry it
/// as `schema_version`. This constant is the single source of truth — bump
/// it here (and document the change in DESIGN.md §13) whenever any report's
/// field set changes shape.
pub const SCHEMA_VERSION: u32 = 3;

/// Identity of one sensed sample: origin node and epoch start packed into a
/// `u64` (`node << 48 | epoch_ms`). Rows already carry both on the wire, so
/// provenance needs no wire-format change; epochs fit 48 bits for any run
/// under ~8900 simulated years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvenanceId(pub u64);

impl ProvenanceId {
    /// Packs an origin node and epoch start (ms) into a provenance id.
    pub fn new(origin: NodeId, epoch_ms: u64) -> Self {
        debug_assert!(epoch_ms < (1u64 << 48), "epoch overflows provenance id");
        ProvenanceId(((origin.0 as u64) << 48) | (epoch_ms & ((1u64 << 48) - 1)))
    }

    /// The node that sensed the sample.
    pub fn origin(&self) -> NodeId {
        NodeId((self.0 >> 48) as u16)
    }

    /// Start of the epoch the sample belongs to, ms.
    pub fn epoch_ms(&self) -> u64 {
        self.0 & ((1u64 << 48) - 1)
    }
}

/// Where a transmission was addressed (a compact mirror of
/// [`Destination`](crate::Destination) for trace records: multicast member
/// lists are reduced to a count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDest {
    /// All in-range nodes process the frame.
    Broadcast,
    /// One addressed receiver (acknowledged, retried).
    Unicast(NodeId),
    /// A set of addressed receivers, reduced to its size.
    Multicast(u16),
}

/// One structured trace event. The taxonomy spans all three layers: the
/// engine (frames, sleep, faults), the in-network tier (epochs, acquisition,
/// routing) and the base-station tier (rewriting, answer mapping).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A frame was put on the air.
    FrameTx {
        /// Transmitting node.
        src: NodeId,
        /// Message kind.
        kind: MsgKind,
        /// Addressing.
        dest: TraceDest,
        /// Payload + header bytes.
        bytes: usize,
        /// Airtime of the transmission, µs.
        airtime_us: u64,
    },
    /// A transmission's carrier-sense loop deferred at least once.
    CsmaDeferred {
        /// Deferring sender.
        node: NodeId,
        /// Number of deferrals taken.
        deferrals: u32,
        /// Whether the deferral budget was exhausted (transmit-with-collision
        /// fall-through).
        capped: bool,
    },
    /// A frame reached a node intact and was handed to its app.
    FrameDelivered {
        /// Transmitting node.
        src: NodeId,
        /// Receiving node.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
        /// Whether the receiver was addressed (else an overhear).
        intended: bool,
    },
    /// A frame was corrupted by a collision at a receiver.
    FrameCollision {
        /// Transmitting node.
        src: NodeId,
        /// Receiver at which the frames collided.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
    },
    /// A frame was dropped by the loss model at a receiver.
    FrameLost {
        /// Transmitting node.
        src: NodeId,
        /// Receiver that missed the frame.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
    },
    /// An addressed unicast frame was missed because the receiver's radio
    /// was off.
    FrameMissed {
        /// Transmitting node.
        src: NodeId,
        /// Addressed receiver.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
        /// True if the receiver slept; false if it was failed.
        asleep: bool,
    },
    /// A missed unicast frame was re-queued for retransmission.
    FrameRetry {
        /// Transmitting node.
        src: NodeId,
        /// Addressed receiver.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
        /// Retries remaining after this one.
        retries_left: u32,
    },
    /// A unicast frame was abandoned after exhausting its retry budget.
    FrameGaveUp {
        /// Transmitting node.
        src: NodeId,
        /// Addressed receiver that never acknowledged.
        node: NodeId,
        /// Message kind.
        kind: MsgKind,
    },
    /// A node turned its radio off.
    SleepStart {
        /// Sleeping node.
        node: NodeId,
        /// Planned nap length, ms.
        duration_ms: u64,
    },
    /// A node woke (or cancelled a pending nap).
    Wake {
        /// Waking node.
        node: NodeId,
    },
    /// A fault-injection crash fired.
    FaultCrash {
        /// Crashed node.
        node: NodeId,
    },
    /// A crashed node rebooted with fresh state.
    FaultRecover {
        /// Recovered node.
        node: NodeId,
    },
    /// The shared clock fired with at least one due query (§3.2.1).
    EpochFire {
        /// Firing node.
        node: NodeId,
        /// Epoch start, ms.
        epoch_ms: u64,
        /// Queries due at this firing.
        due: Vec<QueryId>,
    },
    /// Shared data acquisition: one sample batch served several queries.
    SharedAcquisition {
        /// Sampling node.
        node: NodeId,
        /// Epoch start, ms.
        epoch_ms: u64,
        /// Acquisition queries matched by the readings.
        acq: Vec<QueryId>,
        /// Aggregation queries matched by the readings.
        agg: Vec<QueryId>,
    },
    /// A result frame hop: origin transmission or relay toward the base
    /// station.
    ResultHop {
        /// Sending node (origin or relay).
        from: NodeId,
        /// Elected parents the frame is addressed to.
        to: Vec<NodeId>,
        /// Epoch the carried results belong to, ms.
        epoch_ms: u64,
        /// Provenance of every carried row (empty for aggregation partials,
        /// whose per-origin identity is merged away by TAG).
        prov: Vec<ProvenanceId>,
        /// Queries the frame serves.
        qids: Vec<QueryId>,
        /// Whether the sender sensed the data itself (origin hop).
        origin: bool,
    },
    /// A result row reached the base station's buffers.
    ResultDelivered {
        /// Provenance of the delivered row.
        prov: ProvenanceId,
        /// User-visible queries the row was accepted for.
        qids: Vec<QueryId>,
        /// Epoch the row belongs to, ms.
        epoch_ms: u64,
    },
    /// A node with data but no live route resigned for this epoch
    /// (broadcast `NoRoute`).
    NoRouteResignation {
        /// Orphaned node.
        node: NodeId,
        /// Epoch it could not serve, ms.
        epoch_ms: u64,
    },
    /// The parent failure detector crossed its threshold: `parent` is now
    /// excluded from routing and the next send re-elects around it.
    ParentDead {
        /// Detecting node.
        node: NodeId,
        /// Presumed-dead parent.
        parent: NodeId,
    },
    /// Tier 1 evaluated `Beneficial(probe, candidate)` while inserting.
    Tier1Eval {
        /// The query being inserted (user query or merged synthetic).
        probe: QueryId,
        /// The running synthetic query scored against.
        candidate: QueryId,
        /// The benefit rate (≥ 1.0 means covered).
        rate: f64,
    },
    /// Tier 1 merged the probe into a running synthetic query and re-inserts
    /// the merger (Algorithm 1's recursive step).
    Tier1Merge {
        /// The probe that merged.
        probe: QueryId,
        /// The synthetic query it merged with.
        candidate: QueryId,
        /// Fresh id of the merged synthetic query.
        merged: QueryId,
    },
    /// Tier 1 found the probe covered by a running synthetic query.
    Tier1Covered {
        /// The covered probe.
        probe: QueryId,
        /// The synthetic query that already provides its data.
        covered_by: QueryId,
    },
    /// Tier 1 installed a synthetic query (no beneficial rewrite found).
    Tier1Install {
        /// The installed synthetic query.
        synthetic: QueryId,
        /// Its member user queries.
        members: Vec<QueryId>,
    },
    /// Tier 1 rebuilt a synthetic query after persistent missing results.
    Tier1Reoptimize {
        /// The rebuilt synthetic query's (old) id.
        synthetic: QueryId,
        /// The member user queries re-inserted under fresh ids.
        members: Vec<QueryId>,
    },
    /// Tier 1 detached a departing user query from its synthetic query.
    Tier1Remove {
        /// The departing user query.
        user: QueryId,
        /// The synthetic query it was detached from.
        synthetic: QueryId,
        /// Whether the synthetic lost its last member (and is uninstalled).
        emptied: bool,
        /// Whether the shrunk synthetic stopped being beneficial and its
        /// surviving members are re-inserted (see `Tier1Reindex`).
        rebuilt: bool,
    },
    /// Tier 1 dissolved a no-longer-beneficial synthetic query after a
    /// departure and re-inserted its surviving members.
    Tier1Reindex {
        /// The dissolved synthetic query's (old) id.
        synthetic: QueryId,
        /// The surviving member user queries re-inserted under fresh ids.
        members: Vec<QueryId>,
    },
    /// The base station mapped a synthetic answer back to a user query.
    AnswerMapped {
        /// The user query served.
        user: QueryId,
        /// The synthetic query that produced the answer (== `user` for
        /// strategies without tier 1).
        synthetic: QueryId,
        /// The answered epoch's start, ms.
        epoch_ms: u64,
        /// Result rows in the mapped answer (0 for aggregates).
        rows: u64,
        /// Whether the mapped answer carried any data.
        nonempty: bool,
        /// Emission delay past the epoch start, ms.
        latency_ms: u64,
    },
}

impl TraceEvent {
    /// The event's kind tag, as used in the JSON `ev` field.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            TraceEvent::FrameTx { .. } => "frame-tx",
            TraceEvent::CsmaDeferred { .. } => "csma-deferred",
            TraceEvent::FrameDelivered { .. } => "frame-delivered",
            TraceEvent::FrameCollision { .. } => "frame-collision",
            TraceEvent::FrameLost { .. } => "frame-lost",
            TraceEvent::FrameMissed { .. } => "frame-missed",
            TraceEvent::FrameRetry { .. } => "frame-retry",
            TraceEvent::FrameGaveUp { .. } => "frame-gave-up",
            TraceEvent::SleepStart { .. } => "sleep-start",
            TraceEvent::Wake { .. } => "wake",
            TraceEvent::FaultCrash { .. } => "fault-crash",
            TraceEvent::FaultRecover { .. } => "fault-recover",
            TraceEvent::EpochFire { .. } => "epoch-fire",
            TraceEvent::SharedAcquisition { .. } => "shared-acquisition",
            TraceEvent::ResultHop { .. } => "result-hop",
            TraceEvent::ResultDelivered { .. } => "result-delivered",
            TraceEvent::NoRouteResignation { .. } => "no-route",
            TraceEvent::ParentDead { .. } => "parent-dead",
            TraceEvent::Tier1Eval { .. } => "tier1-eval",
            TraceEvent::Tier1Merge { .. } => "tier1-merge",
            TraceEvent::Tier1Covered { .. } => "tier1-covered",
            TraceEvent::Tier1Install { .. } => "tier1-install",
            TraceEvent::Tier1Reoptimize { .. } => "tier1-reoptimize",
            TraceEvent::Tier1Remove { .. } => "tier1-remove",
            TraceEvent::Tier1Reindex { .. } => "tier1-reindex",
            TraceEvent::AnswerMapped { .. } => "answer-mapped",
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event, µs.
    pub time_us: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one JSON object (one line of the trace file).
    /// Field order is fixed, floats use shortest-roundtrip formatting, so a
    /// deterministic run renders a byte-identical trace.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":");
        s.push_str(&self.time_us.to_string());
        s.push_str(",\"ev\":\"");
        s.push_str(self.event.kind_tag());
        s.push('"');
        let w = &mut s;
        match &self.event {
            TraceEvent::FrameTx {
                src,
                kind,
                dest,
                bytes,
                airtime_us,
            } => {
                num(w, "src", src.0 as u64);
                str_field(w, "kind", &kind.to_string());
                match dest {
                    TraceDest::Broadcast => str_field(w, "dest", "broadcast"),
                    TraceDest::Unicast(n) => num(w, "dest", n.0 as u64),
                    TraceDest::Multicast(k) => {
                        str_field(w, "dest", "multicast");
                        num(w, "fanout", *k as u64);
                    }
                }
                num(w, "bytes", *bytes as u64);
                num(w, "airtime_us", *airtime_us);
            }
            TraceEvent::CsmaDeferred {
                node,
                deferrals,
                capped,
            } => {
                num(w, "node", node.0 as u64);
                num(w, "deferrals", *deferrals as u64);
                bool_field(w, "capped", *capped);
            }
            TraceEvent::FrameDelivered {
                src,
                node,
                kind,
                intended,
            } => {
                num(w, "src", src.0 as u64);
                num(w, "node", node.0 as u64);
                str_field(w, "kind", &kind.to_string());
                bool_field(w, "intended", *intended);
            }
            TraceEvent::FrameCollision { src, node, kind }
            | TraceEvent::FrameLost { src, node, kind }
            | TraceEvent::FrameGaveUp { src, node, kind } => {
                num(w, "src", src.0 as u64);
                num(w, "node", node.0 as u64);
                str_field(w, "kind", &kind.to_string());
            }
            TraceEvent::FrameMissed {
                src,
                node,
                kind,
                asleep,
            } => {
                num(w, "src", src.0 as u64);
                num(w, "node", node.0 as u64);
                str_field(w, "kind", &kind.to_string());
                bool_field(w, "asleep", *asleep);
            }
            TraceEvent::FrameRetry {
                src,
                node,
                kind,
                retries_left,
            } => {
                num(w, "src", src.0 as u64);
                num(w, "node", node.0 as u64);
                str_field(w, "kind", &kind.to_string());
                num(w, "retries_left", *retries_left as u64);
            }
            TraceEvent::SleepStart { node, duration_ms } => {
                num(w, "node", node.0 as u64);
                num(w, "duration_ms", *duration_ms);
            }
            TraceEvent::Wake { node }
            | TraceEvent::FaultCrash { node }
            | TraceEvent::FaultRecover { node } => {
                num(w, "node", node.0 as u64);
            }
            TraceEvent::EpochFire {
                node,
                epoch_ms,
                due,
            } => {
                num(w, "node", node.0 as u64);
                num(w, "epoch_ms", *epoch_ms);
                qid_array(w, "due", due);
            }
            TraceEvent::SharedAcquisition {
                node,
                epoch_ms,
                acq,
                agg,
            } => {
                num(w, "node", node.0 as u64);
                num(w, "epoch_ms", *epoch_ms);
                qid_array(w, "acq", acq);
                qid_array(w, "agg", agg);
            }
            TraceEvent::ResultHop {
                from,
                to,
                epoch_ms,
                prov,
                qids,
                origin,
            } => {
                num(w, "from", from.0 as u64);
                u64_array(w, "to", to.iter().map(|n| n.0 as u64));
                num(w, "epoch_ms", *epoch_ms);
                u64_array(w, "prov", prov.iter().map(|p| p.0));
                qid_array(w, "qids", qids);
                bool_field(w, "origin", *origin);
            }
            TraceEvent::ResultDelivered {
                prov,
                qids,
                epoch_ms,
            } => {
                num(w, "prov", prov.0);
                qid_array(w, "qids", qids);
                num(w, "epoch_ms", *epoch_ms);
            }
            TraceEvent::NoRouteResignation { node, epoch_ms } => {
                num(w, "node", node.0 as u64);
                num(w, "epoch_ms", *epoch_ms);
            }
            TraceEvent::ParentDead { node, parent } => {
                num(w, "node", node.0 as u64);
                num(w, "parent", parent.0 as u64);
            }
            TraceEvent::Tier1Eval {
                probe,
                candidate,
                rate,
            } => {
                num(w, "probe", probe.0);
                num(w, "candidate", candidate.0);
                w.push_str(",\"rate\":");
                if rate.is_finite() {
                    w.push_str(&format!("{rate}"));
                } else {
                    // Coverage scores can be +inf in raw-benefit mode.
                    w.push_str("\"inf\"");
                }
            }
            TraceEvent::Tier1Merge {
                probe,
                candidate,
                merged,
            } => {
                num(w, "probe", probe.0);
                num(w, "candidate", candidate.0);
                num(w, "merged", merged.0);
            }
            TraceEvent::Tier1Covered { probe, covered_by } => {
                num(w, "probe", probe.0);
                num(w, "covered_by", covered_by.0);
            }
            TraceEvent::Tier1Install { synthetic, members }
            | TraceEvent::Tier1Reoptimize { synthetic, members }
            | TraceEvent::Tier1Reindex { synthetic, members } => {
                num(w, "synthetic", synthetic.0);
                qid_array(w, "members", members);
            }
            TraceEvent::Tier1Remove {
                user,
                synthetic,
                emptied,
                rebuilt,
            } => {
                num(w, "user", user.0);
                num(w, "synthetic", synthetic.0);
                bool_field(w, "emptied", *emptied);
                bool_field(w, "rebuilt", *rebuilt);
            }
            TraceEvent::AnswerMapped {
                user,
                synthetic,
                epoch_ms,
                rows,
                nonempty,
                latency_ms,
            } => {
                num(w, "user", user.0);
                num(w, "synthetic", synthetic.0);
                num(w, "epoch_ms", *epoch_ms);
                num(w, "rows", *rows);
                bool_field(w, "nonempty", *nonempty);
                num(w, "latency_ms", *latency_ms);
            }
        }
        s.push('}');
        s
    }
}

fn num(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(value); // kind tags and dest names: no escaping needed
    out.push('"');
}

fn bool_field(out: &mut String, key: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn u64_array(out: &mut String, key: &str, values: impl Iterator<Item = u64>) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn qid_array(out: &mut String, key: &str, qids: &[QueryId]) {
    u64_array(out, key, qids.iter().map(|q| q.0));
}

/// Receiver of trace records. Implementations must tolerate high event
/// rates; the engine calls [`TraceSink::record`] under the handle's lock.
pub trait TraceSink: Send {
    /// Receives one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Cloneable handle the engine and apps emit trace events through.
///
/// The default handle is disabled: every emission site reduces to a single
/// `Option::is_some` branch, keeping the hot path allocation-free and the
/// simulated behaviour bit-identical (tracing never draws from the
/// simulation's RNG — enabled or not).
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<dyn TraceSink>>>);

impl TraceHandle {
    /// The no-op handle (same as `TraceHandle::default()`).
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle that records into `sink`.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        TraceHandle(Some(Arc::new(Mutex::new(sink))))
    }

    /// A handle over an existing shared sink — lets a test keep a typed
    /// `Arc<Mutex<RingSink>>` clone to read the records back.
    pub fn shared(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        TraceHandle(Some(sink))
    }

    /// Whether a sink is attached. Emission sites check this before building
    /// an event, so the disabled path never allocates.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records `event` at simulation time `time_us` (no-op when disabled).
    pub fn emit(&self, time_us: u64, event: TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.lock()
                .expect("trace sink poisoned")
                .record(&TraceRecord { time_us, event });
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.lock().expect("trace sink poisoned").flush();
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TraceHandle")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

/// Header line every trace file starts with.
pub fn trace_header() -> String {
    format!("{{\"schema_version\":{SCHEMA_VERSION},\"format\":\"ttmqo-trace\"}}")
}

/// Sink writing the trace as JSON lines: the [`trace_header`] first, then
/// one [`TraceRecord::to_json`] object per line.
pub struct JsonLinesSink {
    out: Box<dyn Write + Send>,
}

impl JsonLinesSink {
    /// Wraps any writer (the header is written immediately).
    pub fn new(mut out: impl Write + Send + 'static) -> std::io::Result<Self> {
        writeln!(out, "{}", trace_header())?;
        Ok(JsonLinesSink { out: Box::new(out) })
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::new(std::io::BufWriter::new(file))
    }
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&mut self, rec: &TraceRecord) {
        // Ignore write errors at record granularity (a full disk mid-run
        // should not abort the simulation); flush reports them implicitly.
        let _ = writeln!(self.out, "{}", rec.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// records, counting what it dropped.
#[derive(Debug, Default)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` records (0 keeps everything —
    /// convenient for short test runs).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the ring as trace JSONL: the [`trace_header`], a
    /// `{"dropped_records":N,...}` marker when the ring evicted anything
    /// (so [`summarize_trace`] reports the loss instead of passing the
    /// text off as complete), then the retained records oldest-first.
    pub fn to_jsonl(&self) -> String {
        let mut out = trace_header();
        out.push('\n');
        if self.dropped > 0 {
            out.push_str(&format!(
                "{{\"dropped_records\":{},\"note\":\"ring-evicted\"}}\n",
                self.dropped
            ));
        }
        for rec in &self.records {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.capacity > 0 && self.records.len() == self.capacity {
            self.records.pop_front();
            // Saturate: a pathological run must not wrap the counter back
            // to "nothing dropped".
            self.dropped = self.dropped.saturating_add(1);
        }
        self.records.push_back(rec.clone());
    }
}

/// Per-epoch time-series rollup: the run's activity bucketed by epoch
/// instead of collapsed into run totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochRollup {
    /// Start of the bucket, ms (a multiple of the rollup's epoch length).
    pub epoch_ms: u64,
    /// Frames transmitted.
    pub tx: u64,
    /// Collision corruptions observed at receivers.
    pub collisions: u64,
    /// Loss-model drops observed at receivers.
    pub losses: u64,
    /// Unicast retransmissions queued.
    pub retries: u64,
    /// Naps started.
    pub sleeps: u64,
    /// Result rows delivered to the base station.
    pub rows_delivered: u64,
    /// Answers mapped to user queries.
    pub answers: u64,
    /// Mapped answers that carried data (the per-epoch completeness
    /// numerator; expected-epoch counts live in `CompletenessReport`).
    pub nonempty_answers: u64,
}

/// Buckets trace records into per-epoch rollups of length `epoch_len_ms`.
/// Events that carry an explicit `epoch_ms` (rows, answers) are bucketed by
/// it; everything else by its timestamp.
pub fn epoch_rollups(records: &[TraceRecord], epoch_len_ms: u64) -> Vec<EpochRollup> {
    let len = epoch_len_ms.max(1);
    let mut buckets: BTreeMap<u64, EpochRollup> = BTreeMap::new();
    for rec in records {
        let by_time = (rec.time_us / 1000) / len * len;
        let (bucket, apply): (u64, fn(&mut EpochRollup)) = match &rec.event {
            TraceEvent::FrameTx { .. } => (by_time, |r| r.tx += 1),
            TraceEvent::FrameCollision { .. } => (by_time, |r| r.collisions += 1),
            TraceEvent::FrameLost { .. } => (by_time, |r| r.losses += 1),
            TraceEvent::FrameRetry { .. } => (by_time, |r| r.retries += 1),
            TraceEvent::SleepStart { .. } => (by_time, |r| r.sleeps += 1),
            TraceEvent::ResultDelivered { epoch_ms, .. } => {
                (epoch_ms / len * len, |r| r.rows_delivered += 1)
            }
            TraceEvent::AnswerMapped {
                epoch_ms, nonempty, ..
            } => {
                let b = epoch_ms / len * len;
                let r = buckets.entry(b).or_insert(EpochRollup {
                    epoch_ms: b,
                    ..EpochRollup::default()
                });
                r.answers += 1;
                if *nonempty {
                    r.nonempty_answers += 1;
                }
                continue;
            }
            _ => continue,
        };
        let r = buckets.entry(bucket).or_insert(EpochRollup {
            epoch_ms: bucket,
            ..EpochRollup::default()
        });
        apply(r);
    }
    buckets.into_values().collect()
}

/// Summary of a JSON-lines trace, computed from the text alone (no access
/// to the run that produced it) — the `trace-analyze` example's core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// `schema_version` from the header line, if present.
    pub schema_version: Option<u32>,
    /// Total records (header excluded).
    pub events: u64,
    /// Record count per event kind tag.
    pub by_kind: BTreeMap<String, u64>,
    /// Per user query: answers mapped (== `RunReport.answers[q].len()`).
    pub answers_per_query: BTreeMap<u64, u64>,
    /// Per user query: mapped answers that carried data.
    pub nonempty_per_query: BTreeMap<u64, u64>,
    /// Per user query: answer latency samples, ms (epoch start → emission).
    pub latency_ms_per_query: BTreeMap<u64, Vec<u64>>,
    /// Hop-count distribution over delivered provenances: hops → samples.
    /// Hops = result-hop events naming the provenance (origin send
    /// included), for provenances that reached the base station.
    pub hop_distribution: BTreeMap<u64, u64>,
    /// Per-epoch rollups at `BASE_EPOCH_MS` granularity.
    pub rollups: Vec<EpochRollup>,
    /// Non-empty lines that were neither a record (no `ev` field), a
    /// header (no `schema_version` field), nor a drop marker (no
    /// `dropped_records` field) and were skipped.
    pub malformed_lines: u64,
    /// Records the producing sink evicted before this text was written,
    /// summed from drop-marker lines (`{"dropped_records":N,...}`) such as
    /// the ones [`RingSink::to_jsonl`] emits. A nonzero count means the
    /// trace is lossy even though every present line parsed cleanly.
    pub dropped_records: u64,
    /// Whether the file ended in a byte-truncated partial record (a
    /// crash-time or mid-write trace). The partial line is excluded from
    /// every count rather than treated as malformed.
    pub truncated_tail: bool,
}

impl TraceSummary {
    /// Total answers mapped across all user queries.
    pub fn total_answers(&self) -> u64 {
        self.answers_per_query.values().sum()
    }

    /// Mean answer latency over every mapped answer, ms.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        let (sum, n) = self
            .latency_ms_per_query
            .values()
            .flatten()
            .fold((0u64, 0u64), |(s, n), &l| (s + l, n + 1));
        (n > 0).then(|| sum as f64 / n as f64)
    }

    /// Whether the summarized text is a complete record of the run: no
    /// byte-truncated tail, no sink-evicted records, no malformed lines.
    /// Reconciliation against a lossy trace proves nothing, so consumers
    /// (the invariant auditor among them) gate on this.
    pub fn is_lossless(&self) -> bool {
        !self.truncated_tail && self.dropped_records == 0 && self.malformed_lines == 0
    }

    /// One JSON object with every summary field — the `trace_analyze
    /// --json` payload. Per-query latency sample vectors are collapsed to
    /// `{count, mean_ms}` (the samples can number in the hundreds of
    /// thousands on soak traces; the human table shows the same moments).
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring: a field added to the summary without a
        // serialization decision here is a compile error.
        let TraceSummary {
            schema_version,
            events,
            by_kind,
            answers_per_query,
            nonempty_per_query,
            latency_ms_per_query,
            hop_distribution,
            rollups,
            malformed_lines,
            dropped_records,
            truncated_tail,
        } = self;
        let mut s = format!("{{\"schema_version\":{SCHEMA_VERSION}");
        match schema_version {
            Some(v) => s.push_str(&format!(",\"trace_schema_version\":{v}")),
            None => s.push_str(",\"trace_schema_version\":null"),
        }
        s.push_str(&format!(
            ",\"events\":{events},\"malformed_lines\":{malformed_lines},\
             \"dropped_records\":{dropped_records},\"truncated_tail\":{truncated_tail},\
             \"lossless\":{}",
            self.is_lossless()
        ));
        s.push_str(",\"by_kind\":{");
        for (i, (kind, n)) in by_kind.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{kind}\":{n}"));
        }
        s.push_str("},\"queries\":[");
        for (i, (query, answers)) in answers_per_query.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let nonempty = nonempty_per_query.get(query).copied().unwrap_or(0);
            let latencies = latency_ms_per_query
                .get(query)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let mean = if latencies.is_empty() {
                "null".to_string()
            } else {
                format!(
                    "{}",
                    latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
                )
            };
            s.push_str(&format!(
                "{{\"query\":{query},\"answers\":{answers},\"nonempty\":{nonempty},\
                 \"latency\":{{\"count\":{},\"mean_ms\":{mean}}}}}",
                latencies.len()
            ));
        }
        s.push_str("],\"hop_distribution\":{");
        for (i, (hops, n)) in hop_distribution.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{hops}\":{n}"));
        }
        s.push_str("},\"rollups\":[");
        for (i, r) in rollups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let EpochRollup {
                epoch_ms,
                tx,
                collisions,
                losses,
                retries,
                sleeps,
                rows_delivered,
                answers,
                nonempty_answers,
            } = r;
            s.push_str(&format!(
                "{{\"epoch_ms\":{epoch_ms},\"tx\":{tx},\"collisions\":{collisions},\
                 \"losses\":{losses},\"retries\":{retries},\"sleeps\":{sleeps},\
                 \"rows_delivered\":{rows_delivered},\"answers\":{answers},\
                 \"nonempty_answers\":{nonempty_answers}}}"
            ));
        }
        s.push_str("]}");
        s
    }
}

/// A trace was written under an incompatible schema version: its field set
/// may have changed shape, so parsing it as the current schema would produce
/// silently wrong numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSchemaError {
    /// The `schema_version` found in the trace header.
    pub found: u32,
    /// The version this library writes and reads ([`SCHEMA_VERSION`]).
    pub expected: u32,
}

impl fmt::Display for TraceSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace schema version {} does not match this library's version {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for TraceSchemaError {}

/// Summarizes a JSON-lines trace (header line + records). Rollups are
/// bucketed by `epoch_len_ms`.
///
/// A trace with no header at all is tolerated (`schema_version` stays
/// `None`); lines that are neither records nor headers are skipped and
/// counted in [`TraceSummary::malformed_lines`].
///
/// # Errors
///
/// [`TraceSchemaError`] if the trace's header names a `schema_version`
/// different from [`SCHEMA_VERSION`] — the field set may have changed shape
/// between versions, so parsing on anyway would produce silently wrong
/// numbers.
///
/// A byte-truncated final line (the file stops mid-record, as a crash-time
/// trace does) is dropped and flagged in [`TraceSummary::truncated_tail`]
/// instead of being counted as malformed.
pub fn summarize_trace(text: &str, epoch_len_ms: u64) -> Result<TraceSummary, TraceSchemaError> {
    let (text, truncated_tail) = strip_truncated_tail(text);
    let mut summary = TraceSummary {
        truncated_tail,
        ..TraceSummary::default()
    };
    // Hops per provenance id, and which provenances were delivered.
    let mut hops: BTreeMap<u64, u64> = BTreeMap::new();
    let mut delivered: Vec<u64> = Vec::new();
    let mut records: Vec<TraceRecord> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let Some(ev) = json_str_field(line, "ev") else {
            // The header (or an unknown line): pick up the schema version.
            if let Some(v) = json_u64_field(line, "schema_version") {
                let v = v as u32;
                if v != SCHEMA_VERSION {
                    return Err(TraceSchemaError {
                        found: v,
                        expected: SCHEMA_VERSION,
                    });
                }
                summary.schema_version = Some(v);
            } else if let Some(d) = json_u64_field(line, "dropped_records") {
                // A drop marker from a bounded sink: the trace is lossy by
                // this many records, but the marker itself is well-formed.
                summary.dropped_records += d;
            } else {
                summary.malformed_lines += 1;
            }
            continue;
        };
        summary.events += 1;
        *summary.by_kind.entry(ev.clone()).or_insert(0) += 1;
        let t = json_u64_field(line, "t").unwrap_or(0);
        match ev.as_str() {
            "answer-mapped" => {
                let user = json_u64_field(line, "user").unwrap_or(0);
                let nonempty = json_bool_field(line, "nonempty").unwrap_or(false);
                let latency = json_u64_field(line, "latency_ms").unwrap_or(0);
                let epoch_ms = json_u64_field(line, "epoch_ms").unwrap_or(0);
                *summary.answers_per_query.entry(user).or_insert(0) += 1;
                if nonempty {
                    *summary.nonempty_per_query.entry(user).or_insert(0) += 1;
                }
                summary
                    .latency_ms_per_query
                    .entry(user)
                    .or_default()
                    .push(latency);
                records.push(TraceRecord {
                    time_us: t,
                    event: TraceEvent::AnswerMapped {
                        user: QueryId(user),
                        synthetic: QueryId(json_u64_field(line, "synthetic").unwrap_or(0)),
                        epoch_ms,
                        rows: json_u64_field(line, "rows").unwrap_or(0),
                        nonempty,
                        latency_ms: latency,
                    },
                });
            }
            "result-hop" => {
                for p in json_u64_array_field(line, "prov") {
                    *hops.entry(p).or_insert(0) += 1;
                }
            }
            "result-delivered" => {
                let p = json_u64_field(line, "prov").unwrap_or(0);
                delivered.push(p);
                records.push(TraceRecord {
                    time_us: t,
                    event: TraceEvent::ResultDelivered {
                        prov: ProvenanceId(p),
                        qids: Vec::new(),
                        epoch_ms: json_u64_field(line, "epoch_ms").unwrap_or(0),
                    },
                });
            }
            // Rollup-relevant engine events: reconstruct just enough.
            "frame-tx" => records.push(TraceRecord {
                time_us: t,
                event: TraceEvent::FrameTx {
                    src: NodeId(0),
                    kind: MsgKind::Result,
                    dest: TraceDest::Broadcast,
                    bytes: 0,
                    airtime_us: 0,
                },
            }),
            "frame-collision" => records.push(TraceRecord {
                time_us: t,
                event: TraceEvent::FrameCollision {
                    src: NodeId(0),
                    node: NodeId(0),
                    kind: MsgKind::Result,
                },
            }),
            "frame-lost" => records.push(TraceRecord {
                time_us: t,
                event: TraceEvent::FrameLost {
                    src: NodeId(0),
                    node: NodeId(0),
                    kind: MsgKind::Result,
                },
            }),
            "frame-retry" => records.push(TraceRecord {
                time_us: t,
                event: TraceEvent::FrameRetry {
                    src: NodeId(0),
                    node: NodeId(0),
                    kind: MsgKind::Result,
                    retries_left: 0,
                },
            }),
            "sleep-start" => records.push(TraceRecord {
                time_us: t,
                event: TraceEvent::SleepStart {
                    node: NodeId(0),
                    duration_ms: 0,
                },
            }),
            _ => {}
        }
    }
    delivered.sort_unstable();
    delivered.dedup();
    for p in delivered {
        let h = hops.get(&p).copied().unwrap_or(0);
        *summary.hop_distribution.entry(h).or_insert(0) += 1;
    }
    summary.rollups = epoch_rollups(&records, epoch_len_ms);
    Ok(summary)
}

/// Converts a JSON-lines trace into Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto's JSON importer): frame transmissions
/// become complete (`X`) slices on their source node's track, everything
/// else instant (`i`) events on the node named by the record.
pub fn chrome_trace(text: &str) -> String {
    chrome_trace_with_profile(text, None)
}

/// Like [`chrome_trace`], optionally merging a [`crate::ProfileReport`]'s
/// per-phase totals as a flamegraph-style row of back-to-back slices on a
/// dedicated `pid:1` "profiler" track (wall-µs timebase) next to the
/// simulation-time events on `pid:0`.
pub fn chrome_trace_with_profile(
    text: &str,
    profile: Option<&crate::profile::ProfileReport>,
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for line in text.lines() {
        let Some(ev) = json_str_field(line, "ev") else {
            continue;
        };
        let t = json_u64_field(line, "t").unwrap_or(0);
        let tid = json_u64_field(line, "node")
            .or_else(|| json_u64_field(line, "src"))
            .or_else(|| json_u64_field(line, "from"))
            .unwrap_or(0);
        if !first {
            out.push(',');
        }
        first = false;
        if ev == "frame-tx" {
            let dur = json_u64_field(line, "airtime_us").unwrap_or(1);
            out.push_str(&format!(
                "{{\"name\":\"{ev}\",\"ph\":\"X\",\"ts\":{t},\"dur\":{dur},\
                 \"pid\":0,\"tid\":{tid}}}"
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{ev}\",\"ph\":\"i\",\"ts\":{t},\"s\":\"t\",\
                 \"pid\":0,\"tid\":{tid}}}"
            ));
        }
    }
    if let Some(report) = profile {
        for span in report.chrome_spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&span);
        }
    }
    out.push_str("]}");
    out
}

/// Splits off a byte-truncated final line, if any. A complete trace ends
/// with a newline (every sink writes whole lines), and every record is a
/// one-line object closed by `}` — so a file that neither ends with `\n`
/// nor closes its last line with `}` stopped mid-write. Returns the text to
/// process and whether a partial tail was dropped.
pub(crate) fn strip_truncated_tail(text: &str) -> (&str, bool) {
    if text.is_empty() || text.ends_with('\n') {
        return (text, false);
    }
    let tail_start = text.rfind('\n').map_or(0, |i| i + 1);
    if text[tail_start..].ends_with('}') {
        // Complete record that merely lacks a trailing newline.
        (text, false)
    } else {
        (&text[..tail_start], true)
    }
}

/// Extracts a string field from one JSON line (fields this module writes
/// never contain escapes).
pub(crate) fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts an unsigned integer field from one JSON line.
pub(crate) fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a boolean field from one JSON line.
pub(crate) fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts a `u64` array field from one JSON line.
pub(crate) fn json_u64_array_field(line: &str, key: &str) -> Vec<u64> {
    let tag = format!("\"{key}\":[");
    let Some(start) = line.find(&tag).map(|i| i + tag.len()) else {
        return Vec::new();
    };
    let Some(end) = line[start..].find(']').map(|i| i + start) else {
        return Vec::new();
    };
    line[start..end]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_round_trips() {
        let p = ProvenanceId::new(NodeId(513), 123 * 2048);
        assert_eq!(p.origin(), NodeId(513));
        assert_eq!(p.epoch_ms(), 123 * 2048);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::default();
        assert!(!h.is_enabled());
        h.emit(5, TraceEvent::Wake { node: NodeId(1) });
        h.flush(); // no sink: nothing to do, nothing to panic on
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let ring = Arc::new(Mutex::new(RingSink::new(2)));
        let h = TraceHandle::shared(ring.clone());
        assert!(h.is_enabled());
        for i in 0..5 {
            h.emit(i, TraceEvent::Wake { node: NodeId(0) });
        }
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let times: Vec<u64> = ring.records().map(|r| r.time_us).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn json_lines_sink_writes_header_and_records() {
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let h = TraceHandle::new(JsonLinesSink::new(buf.clone()).unwrap());
        h.emit(
            1000,
            TraceEvent::FrameTx {
                src: NodeId(3),
                kind: MsgKind::Result,
                dest: TraceDest::Unicast(NodeId(1)),
                bytes: 32,
                airtime_us: 10400,
            },
        );
        h.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], trace_header());
        assert!(lines[0].contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        assert_eq!(
            lines[1],
            "{\"t\":1000,\"ev\":\"frame-tx\",\"src\":3,\"kind\":\"result\",\
             \"dest\":1,\"bytes\":32,\"airtime_us\":10400}"
        );
    }

    #[test]
    fn record_json_is_deterministic_and_parsable() {
        let rec = TraceRecord {
            time_us: 2_048_000,
            event: TraceEvent::ResultHop {
                from: NodeId(9),
                to: vec![NodeId(5), NodeId(6)],
                epoch_ms: 2048,
                prov: vec![ProvenanceId::new(NodeId(9), 2048)],
                qids: vec![QueryId(1), QueryId(2)],
                origin: true,
            },
        };
        let json = rec.to_json();
        assert_eq!(json, rec.to_json());
        assert_eq!(json_str_field(&json, "ev").as_deref(), Some("result-hop"));
        assert_eq!(json_u64_field(&json, "from"), Some(9));
        assert_eq!(json_u64_array_field(&json, "to"), vec![5, 6]);
        assert_eq!(
            json_u64_array_field(&json, "prov"),
            vec![ProvenanceId::new(NodeId(9), 2048).0]
        );
        assert_eq!(json_bool_field(&json, "origin"), Some(true));
    }

    #[test]
    fn rollups_bucket_by_epoch() {
        let recs = vec![
            TraceRecord {
                time_us: 100_000, // 100 ms → epoch 0
                event: TraceEvent::FrameTx {
                    src: NodeId(1),
                    kind: MsgKind::Result,
                    dest: TraceDest::Broadcast,
                    bytes: 10,
                    airtime_us: 100,
                },
            },
            TraceRecord {
                time_us: 2_500_000, // 2500 ms → epoch 2048
                event: TraceEvent::FrameCollision {
                    src: NodeId(1),
                    node: NodeId(2),
                    kind: MsgKind::Result,
                },
            },
            TraceRecord {
                time_us: 4_500_000, // bucketed by its epoch field, not time
                event: TraceEvent::AnswerMapped {
                    user: QueryId(1),
                    synthetic: QueryId(1),
                    epoch_ms: 2048,
                    rows: 3,
                    nonempty: true,
                    latency_ms: 200,
                },
            },
        ];
        let rollups = epoch_rollups(&recs, 2048);
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].epoch_ms, 0);
        assert_eq!(rollups[0].tx, 1);
        assert_eq!(rollups[1].epoch_ms, 2048);
        assert_eq!(rollups[1].collisions, 1);
        assert_eq!(rollups[1].answers, 1);
        assert_eq!(rollups[1].nonempty_answers, 1);
    }

    #[test]
    fn summarize_reads_back_what_the_sink_wrote() {
        let mut text = trace_header();
        text.push('\n');
        let p = ProvenanceId::new(NodeId(7), 2048);
        let recs = vec![
            TraceRecord {
                time_us: 2_100_000,
                event: TraceEvent::ResultHop {
                    from: NodeId(7),
                    to: vec![NodeId(3)],
                    epoch_ms: 2048,
                    prov: vec![p],
                    qids: vec![QueryId(1)],
                    origin: true,
                },
            },
            TraceRecord {
                time_us: 2_200_000,
                event: TraceEvent::ResultHop {
                    from: NodeId(3),
                    to: vec![NodeId(0)],
                    epoch_ms: 2048,
                    prov: vec![p],
                    qids: vec![QueryId(1)],
                    origin: false,
                },
            },
            TraceRecord {
                time_us: 2_300_000,
                event: TraceEvent::ResultDelivered {
                    prov: p,
                    qids: vec![QueryId(1)],
                    epoch_ms: 2048,
                },
            },
            TraceRecord {
                time_us: 2_400_000,
                event: TraceEvent::AnswerMapped {
                    user: QueryId(1),
                    synthetic: QueryId(1 << 20),
                    epoch_ms: 2048,
                    rows: 1,
                    nonempty: true,
                    latency_ms: 352,
                },
            },
        ];
        for r in &recs {
            text.push_str(&r.to_json());
            text.push('\n');
        }
        let s = summarize_trace(&text, 2048).expect("schema matches");
        assert_eq!(s.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(s.malformed_lines, 0);
        assert_eq!(s.events, 4);
        assert_eq!(s.by_kind["result-hop"], 2);
        assert_eq!(s.answers_per_query[&1], 1);
        assert_eq!(s.nonempty_per_query[&1], 1);
        assert_eq!(s.latency_ms_per_query[&1], vec![352]);
        // The sample took 2 hops (origin + one relay) and was delivered.
        assert_eq!(s.hop_distribution[&2], 1);
        assert_eq!(s.total_answers(), 1);
        assert_eq!(s.mean_latency_ms(), Some(352.0));
        assert_eq!(s.rollups.len(), 1);
        assert_eq!(s.rollups[0].rows_delivered, 1);

        let chrome = chrome_trace(&text);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"name\":\"result-hop\""));
        assert_eq!(chrome.matches("\"ph\":\"i\"").count(), 4);
    }

    #[test]
    fn summarize_rejects_a_mismatched_schema_version() {
        let text = format!(
            "{{\"schema_version\":{},\"format\":\"ttmqo-trace\"}}\n",
            SCHEMA_VERSION + 1
        );
        let err = summarize_trace(&text, 2048).expect_err("future schema must be rejected");
        assert_eq!(err.found, SCHEMA_VERSION + 1);
        assert_eq!(err.expected, SCHEMA_VERSION);
        assert!(err.to_string().contains("does not match"));
        // The rejection happens even when the header follows records.
        let mut late = TraceRecord {
            time_us: 0,
            event: TraceEvent::Wake { node: NodeId(1) },
        }
        .to_json();
        late.push('\n');
        late.push_str(&text);
        assert!(summarize_trace(&late, 2048).is_err());
    }

    #[test]
    fn summarize_counts_malformed_lines_and_tolerates_a_missing_header() {
        let mut text = String::from("this is not json\n{\"unrelated\":1}\n");
        text.push_str(
            &TraceRecord {
                time_us: 1000,
                event: TraceEvent::Wake { node: NodeId(1) },
            }
            .to_json(),
        );
        text.push('\n');
        let s = summarize_trace(&text, 2048).expect("no header: tolerated");
        assert_eq!(s.schema_version, None);
        assert_eq!(s.malformed_lines, 2);
        assert_eq!(s.events, 1);
        assert_eq!(s.by_kind["wake"], 1);
    }

    #[test]
    fn summarize_of_an_empty_trace_is_empty() {
        for text in ["", "\n\n"] {
            let s = summarize_trace(text, 2048).expect("empty trace is fine");
            assert_eq!(s, TraceSummary::default());
            assert_eq!(s.events, 0);
            assert!(s.rollups.is_empty());
            assert_eq!(s.total_answers(), 0);
            assert_eq!(s.mean_latency_ms(), None);
        }
        // A header-only trace parses to zero events but a known version.
        let mut header = trace_header();
        header.push('\n');
        let s = summarize_trace(&header, 2048).unwrap();
        assert_eq!(s.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(s.events, 0);
    }

    #[test]
    fn summarize_tolerates_a_byte_truncated_final_record() {
        let mut text = trace_header();
        text.push('\n');
        for t in [1000, 2000, 3000] {
            text.push_str(
                &TraceRecord {
                    time_us: t,
                    event: TraceEvent::Wake { node: NodeId(1) },
                }
                .to_json(),
            );
            text.push('\n');
        }
        // Chop the file mid-way through the last record, as a crash-time
        // trace would be.
        let cut = &text[..text.len() - 9];
        assert!(!cut.ends_with('\n') && !cut.ends_with('}'));
        let s = summarize_trace(cut, 2048).expect("truncated tail tolerated");
        assert!(s.truncated_tail);
        assert_eq!(s.events, 2, "partial record excluded");
        assert_eq!(s.malformed_lines, 0, "a truncated tail is not malformed");
        // A file that merely lacks the trailing newline is complete.
        let no_newline = text.trim_end_matches('\n');
        let s = summarize_trace(no_newline, 2048).unwrap();
        assert!(!s.truncated_tail);
        assert_eq!(s.events, 3);
    }

    #[test]
    fn rollups_handle_single_epoch_and_horizon_boundary_records() {
        // A run one epoch long: everything lands in bucket 0, including a
        // record timestamped exactly at the run horizon (2048 ms boundary
        // opens bucket 2048 — events *at* the horizon belong to the next
        // bucket, matching the window convention).
        let recs = vec![
            TraceRecord {
                time_us: 0,
                event: TraceEvent::FrameTx {
                    src: NodeId(1),
                    kind: MsgKind::Result,
                    dest: TraceDest::Broadcast,
                    bytes: 10,
                    airtime_us: 100,
                },
            },
            TraceRecord {
                time_us: 2_047_999,
                event: TraceEvent::FrameTx {
                    src: NodeId(1),
                    kind: MsgKind::Result,
                    dest: TraceDest::Broadcast,
                    bytes: 10,
                    airtime_us: 100,
                },
            },
            TraceRecord {
                time_us: 2_048_000, // exactly at the horizon of a 1-epoch run
                event: TraceEvent::SleepStart {
                    node: NodeId(2),
                    duration_ms: 100,
                },
            },
        ];
        let rollups = epoch_rollups(&recs, 2048);
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].epoch_ms, 0);
        assert_eq!(rollups[0].tx, 2);
        assert_eq!(rollups[1].epoch_ms, 2048);
        assert_eq!(rollups[1].sleeps, 1);
        // Degenerate epoch length: clamped to 1 ms buckets, no panic.
        let tiny = epoch_rollups(&recs, 0);
        assert_eq!(tiny.iter().map(|r| r.tx).sum::<u64>(), 2);
    }

    #[test]
    fn ring_sink_drop_counter_saturates() {
        let mut ring = RingSink::new(1);
        ring.dropped = u64::MAX;
        let rec = TraceRecord {
            time_us: 0,
            event: TraceEvent::Wake { node: NodeId(0) },
        };
        ring.record(&rec); // fills the ring
        ring.record(&rec); // evicts: dropped must saturate, not wrap
        ring.record(&rec);
        assert_eq!(ring.dropped(), u64::MAX);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn ring_sink_jsonl_surfaces_evictions_to_the_summary() {
        let mut ring = RingSink::new(2);
        for t in [1000, 2000, 3000] {
            ring.record(&TraceRecord {
                time_us: t,
                event: TraceEvent::Wake { node: NodeId(1) },
            });
        }
        assert_eq!(ring.dropped(), 1);
        let text = ring.to_jsonl();
        let s = summarize_trace(&text, 2048).expect("marker is not a schema error");
        assert_eq!(s.events, 2, "only retained records are counted");
        assert_eq!(s.dropped_records, 1, "eviction surfaces in the summary");
        assert_eq!(s.malformed_lines, 0, "the drop marker is not malformed");
        assert!(!s.is_lossless(), "an evicting ring is a lossy trace");

        // A ring that never evicted writes no marker and reads back
        // lossless.
        let mut full = RingSink::new(0);
        full.record(&TraceRecord {
            time_us: 1000,
            event: TraceEvent::Wake { node: NodeId(1) },
        });
        let s = summarize_trace(&full.to_jsonl(), 2048).unwrap();
        assert_eq!(s.dropped_records, 0);
        assert!(s.is_lossless());
        assert!(!full.to_jsonl().contains("dropped_records"));
    }

    #[test]
    fn summary_json_is_wellformed_and_flags_lossiness() {
        let mut text = trace_header();
        text.push('\n');
        text.push_str(
            &TraceRecord {
                time_us: 2_400_000,
                event: TraceEvent::AnswerMapped {
                    user: QueryId(1),
                    synthetic: QueryId(1 << 20),
                    epoch_ms: 2048,
                    rows: 1,
                    nonempty: true,
                    latency_ms: 352,
                },
            }
            .to_json(),
        );
        text.push('\n');
        let json = summarize_trace(&text, 2048).unwrap().to_json();
        assert!(json.contains("\"events\":1"));
        assert!(json.contains("\"lossless\":true"));
        assert!(json.contains("\"query\":1"));
        assert!(json.contains("\"mean_ms\":352"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // The same trace behind an evicting ring reports itself lossy.
        text.push_str("{\"dropped_records\":5,\"note\":\"ring-evicted\"}\n");
        let json = summarize_trace(&text, 2048).unwrap().to_json();
        assert!(json.contains("\"dropped_records\":5"));
        assert!(json.contains("\"lossless\":false"));
    }
}
