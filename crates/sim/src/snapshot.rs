//! Versioned, self-describing binary snapshots of simulation state.
//!
//! A snapshot is a byte document: an 8-byte magic ([`SNAPSHOT_MAGIC`]), the
//! workspace [`SCHEMA_VERSION`](crate::SCHEMA_VERSION) as a little-endian
//! `u32`, then a sequence of *sections*, each framed as
//!
//! ```text
//! [tag: u8] [len: u64 le] [crc32: u32 le] [payload: len bytes]
//! ```
//!
//! Section payloads are produced by [`Snapshot::write`] into a [`SnapWriter`]
//! and decoded by [`Restorable::read`] from a [`SnapReader`]. Every scalar is
//! little-endian and fixed-width; `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`]) so restoring is bit-exact; unordered containers
//! (`HashMap`/`HashSet`) are serialized in sorted key order so the same state
//! always produces the same bytes.
//!
//! Decoding never panics: a truncated, bit-flipped, or wrong-version snapshot
//! surfaces as a typed [`SnapshotError`]. The per-section CRC-32 is verified
//! before any payload byte is interpreted, so decoders may trust lengths they
//! read (they still bound speculative allocations).
//!
//! What is deliberately *not* serialized, and why, is catalogued in
//! DESIGN.md §17: sensor fields and trace sinks (pure functions of config /
//! host-side observers — the caller re-supplies them), the app factory
//! (contains arbitrary closures; re-supplied, and needed live because node
//! recovery rebuilds apps through it), and scratch buffers that are empty
//! between events.

use crate::energy::EnergyProfile;
use crate::engine::{OutputRecord, SimConfig};
use crate::faults::{CrashEvent, FaultPlan, LinkDegradation, RandomCrashes, RegionLossOverride};
use crate::radio::{Destination, MsgKind, RadioParams};
use crate::time::SimTime;
use crate::topology::{NodeId, Position};
use crate::trace::SCHEMA_VERSION;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use ttmqo_query::{
    AggOp, AggValue, Attribute, EpochAnswer, EpochDuration, PartialAgg, Predicate, PredicateSet,
    Query, QueryId, Readings, Region, Row, Selection,
};

/// First 8 bytes of every snapshot document.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TTMQOSNP";

/// Section tag of the engine state written by `Simulator::write_snapshot`.
pub const SECTION_SIMULATOR: u8 = 1;

/// Section tag reserved for the runner's session state (answer ingestion,
/// optimizer dynamics, repair monitor) written by `ttmqo-core`.
pub const SECTION_RUNNER: u8 = 2;

/// Why a snapshot could not be decoded. Every decoding failure — truncation,
/// bit flips, wrong version, impossible values — surfaces as one of these;
/// decoding never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The document does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The document was written under a different schema version.
    VersionMismatch {
        /// The version stamped in the snapshot header.
        found: u32,
        /// The version this library reads and writes
        /// ([`SCHEMA_VERSION`](crate::SCHEMA_VERSION)).
        expected: u32,
    },
    /// The document ends before the data it promises.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Tag of the corrupted section.
        section: u8,
    },
    /// The bytes decoded but describe an impossible state.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => {
                write!(f, "snapshot header magic mismatch: not a TTMQO snapshot")
            }
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot schema version {found} does not match this library's version {expected}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} byte(s) but only {available} available"
            ),
            SnapshotError::ChecksumMismatch { section } => write!(
                f,
                "snapshot section 0x{section:02x} failed its CRC-32 check (corrupted bytes)"
            ),
            SnapshotError::Corrupt(why) => write!(f, "snapshot data corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — snapshot framing
/// is not a hot path, so no table.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Sink for one section payload: fixed-width little-endian scalar encoders
/// that [`Snapshot::write`] implementations compose.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty payload buffer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (snapshots are host-width independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends raw bytes (no length prefix; pair with [`SnapReader::bytes`]).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer into its payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over one section payload: the decoding counterpart of
/// [`SnapWriter`]. Every read is bounds-checked and returns
/// [`SnapshotError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(SnapshotError::Truncated {
                needed: n,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`); errors if it overflows the host.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("usize overflows host width".into()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly; trailing bytes mean the
    /// encoder and decoder disagree on the format.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s) after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Types that can write their complete state into a snapshot section.
///
/// Implementations live in the module that defines the type (so private
/// fields stay private) and destructure `self` exhaustively — adding a field
/// without serializing it then fails to compile, which is the completeness
/// guarantee the snapshot test suite pins.
pub trait Snapshot {
    /// Appends this value's state to `w`.
    fn write(&self, w: &mut SnapWriter);
}

/// Types that can be rebuilt from a snapshot section written by their
/// [`Snapshot`] implementation.
pub trait Restorable: Sized {
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] — truncation, corruption — from the underlying
    /// reads; implementations never panic on untrusted bytes.
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

/// Assembles a snapshot document: header then checksummed sections.
#[derive(Debug)]
pub struct SnapshotBuilder {
    out: Vec<u8>,
}

impl SnapshotBuilder {
    /// A document containing just the magic + version header.
    pub fn new() -> Self {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        SnapshotBuilder { out }
    }

    /// Appends one section: tag, length, CRC-32, payload.
    pub fn section(&mut self, tag: u8, payload: &[u8]) {
        self.out.push(tag);
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(&crc32(payload).to_le_bytes());
        self.out.extend_from_slice(payload);
    }

    /// The finished document bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

impl Default for SnapshotBuilder {
    fn default() -> Self {
        SnapshotBuilder::new()
    }
}

/// A parsed snapshot document: header verified, every section's length and
/// CRC-32 checked before any payload is handed out.
#[derive(Debug)]
pub struct SnapshotDocument<'a> {
    sections: Vec<(u8, &'a [u8])>,
}

impl<'a> SnapshotDocument<'a> {
    /// Parses and fully validates `bytes`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] / [`SnapshotError::VersionMismatch`] for a
    /// foreign or stale header, [`SnapshotError::Truncated`] if any frame
    /// runs past the end, [`SnapshotError::ChecksumMismatch`] if a payload
    /// was bit-flipped.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapReader::new(bytes);
        if r.bytes(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let found = r.u32()?;
        if found != SCHEMA_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found,
                expected: SCHEMA_VERSION,
            });
        }
        let mut sections = Vec::new();
        while r.remaining() > 0 {
            let tag = r.u8()?;
            let len = r.usize()?;
            let crc = r.u32()?;
            let payload = r.bytes(len)?;
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { section: tag });
            }
            sections.push((tag, payload));
        }
        Ok(SnapshotDocument { sections })
    }

    /// A reader over the first section with tag `tag`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if no such section exists.
    pub fn section(&self, tag: u8) -> Result<SnapReader<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| SnapReader::new(payload))
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing section 0x{tag:02x}")))
    }

    /// The tags present, in document order.
    pub fn tags(&self) -> impl Iterator<Item = u8> + '_ {
        self.sections.iter().map(|(t, _)| *t)
    }
}

/// Caps speculative `Vec` pre-allocation while decoding: lengths inside a
/// checksummed section are trustworthy, but growing incrementally past this
/// bound costs little and keeps a hand-corrupted length from aborting on
/// allocation before the decoder reaches the truncation error.
const PREALLOC_CAP: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Primitives and containers
// ---------------------------------------------------------------------------

macro_rules! scalar_snapshot {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snapshot for $ty {
            fn write(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
        }
        impl Restorable for $ty {
            fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                r.$get()
            }
        }
    };
}

scalar_snapshot!(u8, put_u8, u8);
scalar_snapshot!(u16, put_u16, u16);
scalar_snapshot!(u32, put_u32, u32);
scalar_snapshot!(u64, put_u64, u64);
scalar_snapshot!(i64, put_i64, i64);
scalar_snapshot!(usize, put_usize, usize);
scalar_snapshot!(f64, put_f64, f64);
scalar_snapshot!(bool, put_bool, bool);

impl Snapshot for String {
    fn write(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
}

impl Restorable for String {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let bytes = r.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 in string".into()))
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn write(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.write(w);
        }
    }
}

impl<T: Restorable> Restorable for Vec<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut v = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            v.push(T::read(r)?);
        }
        Ok(v)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.write(w);
            }
        }
    }
}

impl<T: Restorable> Restorable for Option<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            b => Err(SnapshotError::Corrupt(format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Box<T> {
    fn write(&self, w: &mut SnapWriter) {
        (**self).write(w);
    }
}

impl<T: Restorable> Restorable for Box<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Box::new(T::read(r)?))
    }
}

// Shared payloads deduplicate memory, not meaning: restoring clones of one
// `Arc` as independent allocations is observationally identical.
impl<T: Snapshot> Snapshot for Arc<T> {
    fn write(&self, w: &mut SnapWriter) {
        (**self).write(w);
    }
}

impl<T: Restorable> Restorable for Arc<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Arc::new(T::read(r)?))
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn write(&self, w: &mut SnapWriter) {
        self.0.write(w);
        self.1.write(w);
    }
}

impl<A: Restorable, B: Restorable> Restorable for (A, B) {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn write(&self, w: &mut SnapWriter) {
        self.0.write(w);
        self.1.write(w);
        self.2.write(w);
    }
}

impl<A: Restorable, B: Restorable, C: Restorable> Restorable for (A, B, C) {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn write(&self, w: &mut SnapWriter) {
        for item in self {
            item.write(w);
        }
    }
}

impl<T: Restorable + Default + Copy, const N: usize> Restorable for [T; N] {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut arr = [T::default(); N];
        for slot in arr.iter_mut() {
            *slot = T::read(r)?;
        }
        Ok(arr)
    }
}

impl<K: Snapshot, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn write(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.write(w);
            v.write(w);
        }
    }
}

impl<K: Restorable + Ord, V: Restorable> Restorable for BTreeMap<K, V> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::read(r)?;
            let v = V::read(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Snapshot> Snapshot for BTreeSet<T> {
    fn write(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.write(w);
        }
    }
}

impl<T: Restorable + Ord> Restorable for BTreeSet<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut s = BTreeSet::new();
        for _ in 0..n {
            s.insert(T::read(r)?);
        }
        Ok(s)
    }
}

// Hash containers iterate in arbitrary order; snapshots sort so identical
// state always yields identical bytes.
impl<K: Snapshot + Ord, V: Snapshot> Snapshot for HashMap<K, V> {
    fn write(&self, w: &mut SnapWriter) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(entries.len());
        for (k, v) in entries {
            k.write(w);
            v.write(w);
        }
    }
}

impl<K: Restorable + Eq + std::hash::Hash, V: Restorable> Restorable for HashMap<K, V> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut m = HashMap::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            let k = K::read(r)?;
            let v = V::read(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Snapshot + Ord> Snapshot for HashSet<T> {
    fn write(&self, w: &mut SnapWriter) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.put_usize(items.len());
        for item in items {
            item.write(w);
        }
    }
}

impl<T: Restorable + Eq + std::hash::Hash> Restorable for HashSet<T> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut s = HashSet::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            s.insert(T::read(r)?);
        }
        Ok(s)
    }
}

impl Snapshot for () {
    fn write(&self, _w: &mut SnapWriter) {}
}

impl Restorable for () {
    fn read(_r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Simulator types with public fields
// ---------------------------------------------------------------------------

impl Snapshot for NodeId {
    fn write(&self, w: &mut SnapWriter) {
        let NodeId(raw) = *self;
        w.put_u16(raw);
    }
}

impl Restorable for NodeId {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NodeId(r.u16()?))
    }
}

impl Snapshot for SimTime {
    fn write(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_ms());
    }
}

impl Restorable for SimTime {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimTime::from_ms(r.u64()?))
    }
}

impl Snapshot for Position {
    fn write(&self, w: &mut SnapWriter) {
        let Position { x, y } = *self;
        w.put_f64(x);
        w.put_f64(y);
    }
}

impl Restorable for Position {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Position {
            x: r.f64()?,
            y: r.f64()?,
        })
    }
}

impl Snapshot for MsgKind {
    fn write(&self, w: &mut SnapWriter) {
        let idx = MsgKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("MsgKind::ALL covers every variant");
        w.put_u8(idx as u8);
    }
}

impl Restorable for MsgKind {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let idx = r.u8()? as usize;
        MsgKind::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("invalid MsgKind index {idx}")))
    }
}

impl Snapshot for Destination {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            Destination::Broadcast => w.put_u8(0),
            Destination::Unicast(node) => {
                w.put_u8(1);
                node.write(w);
            }
            Destination::Multicast(nodes) => {
                w.put_u8(2);
                nodes.write(w);
            }
        }
    }
}

impl Restorable for Destination {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Destination::Broadcast),
            1 => Ok(Destination::Unicast(NodeId::read(r)?)),
            2 => Ok(Destination::Multicast(Vec::read(r)?)),
            b => Err(SnapshotError::Corrupt(format!(
                "invalid Destination tag {b}"
            ))),
        }
    }
}

impl Snapshot for RadioParams {
    fn write(&self, w: &mut SnapWriter) {
        let RadioParams {
            startup_ms,
            per_byte_ms,
            header_bytes,
            loss_rate,
            distance_loss,
            collisions,
            max_retries,
            csma_max_deferrals,
        } = *self;
        w.put_f64(startup_ms);
        w.put_f64(per_byte_ms);
        w.put_usize(header_bytes);
        w.put_f64(loss_rate);
        w.put_bool(distance_loss);
        w.put_bool(collisions);
        w.put_u32(max_retries);
        w.put_u32(csma_max_deferrals);
    }
}

impl Restorable for RadioParams {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RadioParams {
            startup_ms: r.f64()?,
            per_byte_ms: r.f64()?,
            header_bytes: r.usize()?,
            loss_rate: r.f64()?,
            distance_loss: r.bool()?,
            collisions: r.bool()?,
            max_retries: r.u32()?,
            csma_max_deferrals: r.u32()?,
        })
    }
}

impl Snapshot for EnergyProfile {
    fn write(&self, w: &mut SnapWriter) {
        let EnergyProfile {
            tx_mw,
            rx_mw,
            idle_mw,
            sleep_mw,
            sample_uj,
        } = *self;
        w.put_f64(tx_mw);
        w.put_f64(rx_mw);
        w.put_f64(idle_mw);
        w.put_f64(sleep_mw);
        w.put_f64(sample_uj);
    }
}

impl Restorable for EnergyProfile {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(EnergyProfile {
            tx_mw: r.f64()?,
            rx_mw: r.f64()?,
            idle_mw: r.f64()?,
            sleep_mw: r.f64()?,
            sample_uj: r.f64()?,
        })
    }
}

impl Snapshot for SimConfig {
    fn write(&self, w: &mut SnapWriter) {
        let SimConfig {
            seed,
            maintenance_interval_ms,
            maintenance_bytes,
        } = *self;
        w.put_u64(seed);
        maintenance_interval_ms.write(w);
        w.put_usize(maintenance_bytes);
    }
}

impl Restorable for SimConfig {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimConfig {
            seed: r.u64()?,
            maintenance_interval_ms: Option::read(r)?,
            maintenance_bytes: r.usize()?,
        })
    }
}

impl<O: Snapshot> Snapshot for OutputRecord<O> {
    fn write(&self, w: &mut SnapWriter) {
        let OutputRecord { time, node, output } = self;
        time.write(w);
        node.write(w);
        output.write(w);
    }
}

impl<O: Restorable> Restorable for OutputRecord<O> {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(OutputRecord {
            time: SimTime::read(r)?,
            node: NodeId::read(r)?,
            output: O::read(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Fault-plan types (all-public fields)
// ---------------------------------------------------------------------------

impl Snapshot for CrashEvent {
    fn write(&self, w: &mut SnapWriter) {
        let CrashEvent {
            node,
            at_ms,
            recover_at_ms,
        } = *self;
        node.write(w);
        w.put_u64(at_ms);
        recover_at_ms.write(w);
    }
}

impl Restorable for CrashEvent {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CrashEvent {
            node: NodeId::read(r)?,
            at_ms: r.u64()?,
            recover_at_ms: Option::read(r)?,
        })
    }
}

impl Snapshot for RandomCrashes {
    fn write(&self, w: &mut SnapWriter) {
        let RandomCrashes {
            fraction,
            from_ms,
            until_ms,
            outage_ms,
        } = *self;
        w.put_f64(fraction);
        w.put_u64(from_ms);
        w.put_u64(until_ms);
        outage_ms.write(w);
    }
}

impl Restorable for RandomCrashes {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RandomCrashes {
            fraction: r.f64()?,
            from_ms: r.u64()?,
            until_ms: r.u64()?,
            outage_ms: Option::read(r)?,
        })
    }
}

impl Snapshot for LinkDegradation {
    fn write(&self, w: &mut SnapWriter) {
        let LinkDegradation {
            from_ms,
            until_ms,
            added_loss,
        } = *self;
        w.put_u64(from_ms);
        w.put_u64(until_ms);
        w.put_f64(added_loss);
    }
}

impl Restorable for LinkDegradation {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LinkDegradation {
            from_ms: r.u64()?,
            until_ms: r.u64()?,
            added_loss: r.f64()?,
        })
    }
}

impl Snapshot for RegionLossOverride {
    fn write(&self, w: &mut SnapWriter) {
        let RegionLossOverride {
            x0,
            y0,
            x1,
            y1,
            from_ms,
            until_ms,
            loss_rate,
        } = *self;
        w.put_f64(x0);
        w.put_f64(y0);
        w.put_f64(x1);
        w.put_f64(y1);
        w.put_u64(from_ms);
        w.put_u64(until_ms);
        w.put_f64(loss_rate);
    }
}

impl Restorable for RegionLossOverride {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RegionLossOverride {
            x0: r.f64()?,
            y0: r.f64()?,
            x1: r.f64()?,
            y1: r.f64()?,
            from_ms: r.u64()?,
            until_ms: r.u64()?,
            loss_rate: r.f64()?,
        })
    }
}

impl Snapshot for FaultPlan {
    fn write(&self, w: &mut SnapWriter) {
        let FaultPlan {
            seed,
            crashes,
            random_crashes,
            degradations,
            region_overrides,
        } = self;
        w.put_u64(*seed);
        crashes.write(w);
        random_crashes.write(w);
        degradations.write(w);
        region_overrides.write(w);
    }
}

impl Restorable for FaultPlan {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultPlan {
            seed: r.u64()?,
            crashes: Vec::read(r)?,
            random_crashes: Option::read(r)?,
            degradations: Vec::read(r)?,
            region_overrides: Vec::read(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Query-model types (ttmqo-query re-exports; rebuilt through their validating
// constructors, mapping impossible combinations to `Corrupt`)
// ---------------------------------------------------------------------------

impl Snapshot for Attribute {
    fn write(&self, w: &mut SnapWriter) {
        let idx = Attribute::ALL
            .iter()
            .position(|a| a == self)
            .expect("Attribute::ALL covers every variant");
        w.put_u8(idx as u8);
    }
}

impl Restorable for Attribute {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let idx = r.u8()? as usize;
        Attribute::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("invalid Attribute index {idx}")))
    }
}

impl Snapshot for AggOp {
    fn write(&self, w: &mut SnapWriter) {
        let idx = AggOp::ALL
            .iter()
            .position(|o| o == self)
            .expect("AggOp::ALL covers every variant");
        w.put_u8(idx as u8);
    }
}

impl Restorable for AggOp {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let idx = r.u8()? as usize;
        AggOp::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("invalid AggOp index {idx}")))
    }
}

impl Snapshot for QueryId {
    fn write(&self, w: &mut SnapWriter) {
        let QueryId(raw) = *self;
        w.put_u64(raw);
    }
}

impl Restorable for QueryId {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(QueryId(r.u64()?))
    }
}

impl Snapshot for EpochDuration {
    fn write(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_ms());
    }
}

impl Restorable for EpochDuration {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let ms = r.u64()?;
        EpochDuration::from_ms(ms)
            .map_err(|_| SnapshotError::Corrupt(format!("invalid epoch duration {ms} ms")))
    }
}

impl Snapshot for Region {
    fn write(&self, w: &mut SnapWriter) {
        w.put_f64(self.x_min());
        w.put_f64(self.y_min());
        w.put_f64(self.x_max());
        w.put_f64(self.y_max());
    }
}

impl Restorable for Region {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let (x_min, y_min, x_max, y_max) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        Region::new(x_min, y_min, x_max, y_max)
            .map_err(|_| SnapshotError::Corrupt("degenerate region".into()))
    }
}

impl Snapshot for Predicate {
    fn write(&self, w: &mut SnapWriter) {
        self.attr().write(w);
        w.put_f64(self.min());
        w.put_f64(self.max());
    }
}

impl Restorable for Predicate {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let attr = Attribute::read(r)?;
        let (min, max) = (r.f64()?, r.f64()?);
        Predicate::new(attr, min, max)
            .map_err(|_| SnapshotError::Corrupt("invalid predicate bounds".into()))
    }
}

impl Snapshot for PredicateSet {
    fn write(&self, w: &mut SnapWriter) {
        let preds: Vec<Predicate> = self.iter().collect();
        preds.write(w);
    }
}

impl Restorable for PredicateSet {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let preds: Vec<Predicate> = Vec::read(r)?;
        Ok(PredicateSet::from_predicates(preds))
    }
}

impl Snapshot for Selection {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            Selection::Attributes(attrs) => {
                w.put_u8(0);
                attrs.write(w);
            }
            Selection::Aggregates(aggs) => {
                w.put_u8(1);
                aggs.write(w);
            }
        }
    }
}

impl Restorable for Selection {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Selection::Attributes(Vec::read(r)?)),
            1 => Ok(Selection::Aggregates(Vec::read(r)?)),
            b => Err(SnapshotError::Corrupt(format!("invalid Selection tag {b}"))),
        }
    }
}

impl Snapshot for Query {
    fn write(&self, w: &mut SnapWriter) {
        self.id().write(w);
        self.selection().write(w);
        self.predicates().write(w);
        self.epoch().write(w);
        self.region().copied().write(w);
    }
}

impl Restorable for Query {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = QueryId::read(r)?;
        let selection = Selection::read(r)?;
        let predicates = PredicateSet::read(r)?;
        let epoch = EpochDuration::read(r)?;
        let region: Option<Region> = Option::read(r)?;
        let q = Query::from_parts(id, selection, predicates, epoch)
            .map_err(|e| SnapshotError::Corrupt(format!("invalid query: {e:?}")))?;
        Ok(match region {
            Some(region) => q.with_region(region),
            None => q,
        })
    }
}

impl Snapshot for Readings {
    fn write(&self, w: &mut SnapWriter) {
        let pairs: Vec<(Attribute, f64)> = self.iter().collect();
        pairs.write(w);
    }
}

impl Restorable for Readings {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let pairs: Vec<(Attribute, f64)> = Vec::read(r)?;
        Ok(pairs.into_iter().collect())
    }
}

impl Snapshot for Row {
    fn write(&self, w: &mut SnapWriter) {
        let Row {
            node,
            time_ms,
            readings,
        } = self;
        w.put_u16(*node);
        w.put_u64(*time_ms);
        readings.write(w);
    }
}

impl Restorable for Row {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Row {
            node: r.u16()?,
            time_ms: r.u64()?,
            readings: Readings::read(r)?,
        })
    }
}

impl Snapshot for AggValue {
    fn write(&self, w: &mut SnapWriter) {
        let AggValue { op, attr, value } = self;
        op.write(w);
        attr.write(w);
        w.put_f64(*value);
    }
}

impl Restorable for AggValue {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AggValue {
            op: AggOp::read(r)?,
            attr: Attribute::read(r)?,
            value: r.f64()?,
        })
    }
}

impl Snapshot for EpochAnswer {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            EpochAnswer::Rows(rows) => {
                w.put_u8(0);
                rows.write(w);
            }
            EpochAnswer::Aggregates(values) => {
                w.put_u8(1);
                values.write(w);
            }
        }
    }
}

impl Restorable for EpochAnswer {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(EpochAnswer::Rows(Vec::read(r)?)),
            1 => Ok(EpochAnswer::Aggregates(Vec::read(r)?)),
            b => Err(SnapshotError::Corrupt(format!(
                "invalid EpochAnswer tag {b}"
            ))),
        }
    }
}

impl Snapshot for PartialAgg {
    fn write(&self, w: &mut SnapWriter) {
        match *self {
            PartialAgg::Min(v) => {
                w.put_u8(0);
                w.put_f64(v);
            }
            PartialAgg::Max(v) => {
                w.put_u8(1);
                w.put_f64(v);
            }
            PartialAgg::Sum(v) => {
                w.put_u8(2);
                w.put_f64(v);
            }
            PartialAgg::Count(c) => {
                w.put_u8(3);
                w.put_u64(c);
            }
            PartialAgg::Avg { sum, count } => {
                w.put_u8(4);
                w.put_f64(sum);
                w.put_u64(count);
            }
        }
    }
}

impl Restorable for PartialAgg {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(PartialAgg::Min(r.f64()?)),
            1 => Ok(PartialAgg::Max(r.f64()?)),
            2 => Ok(PartialAgg::Sum(r.f64()?)),
            3 => Ok(PartialAgg::Count(r.u64()?)),
            4 => Ok(PartialAgg::Avg {
                sum: r.f64()?,
                count: r.u64()?,
            }),
            b => Err(SnapshotError::Corrupt(format!(
                "invalid PartialAgg tag {b}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + Restorable + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = SnapWriter::new();
        value.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::read(&mut r).expect("roundtrip decodes");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, value);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(std::f64::consts::PI);
        roundtrip("héllo".to_string());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        weird.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(f64::read(&mut r).unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip([5u64; 5]);
        roundtrip(BTreeMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        let hm: HashMap<u64, u64> = (0..100).map(|i| (i, i * i)).collect();
        roundtrip(hm);
        let hs: HashSet<u16> = (0..50).collect();
        roundtrip(hs);
    }

    #[test]
    fn hash_containers_serialize_in_sorted_order() {
        // Two maps with identical content but different insertion history
        // must produce identical bytes.
        let mut a: HashMap<u64, u64> = HashMap::new();
        let mut b: HashMap<u64, u64> = HashMap::with_capacity(1024);
        for i in 0..64 {
            a.insert(i, i + 1);
        }
        for i in (0..64).rev() {
            b.insert(i, i + 1);
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.write(&mut wa);
        b.write(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn sim_type_roundtrips() {
        roundtrip(NodeId(513));
        roundtrip(SimTime::from_ms(123_456));
        roundtrip(Position { x: 20.0, y: 40.0 });
        for kind in MsgKind::ALL {
            roundtrip(kind);
        }
        roundtrip(Destination::Broadcast);
        roundtrip(Destination::Unicast(NodeId(3)));
        roundtrip(Destination::Multicast(vec![NodeId(1), NodeId(2)]));
        roundtrip(RadioParams::default());
        roundtrip(EnergyProfile::default());
        roundtrip(FaultPlan {
            seed: 9,
            crashes: vec![CrashEvent {
                node: NodeId(4),
                at_ms: 1000,
                recover_at_ms: Some(5000),
            }],
            random_crashes: Some(RandomCrashes {
                fraction: 0.1,
                from_ms: 0,
                until_ms: 10_000,
                outage_ms: None,
            }),
            degradations: vec![LinkDegradation {
                from_ms: 0,
                until_ms: 100,
                added_loss: 0.5,
            }],
            region_overrides: vec![RegionLossOverride {
                x0: 0.0,
                y0: 0.0,
                x1: 10.0,
                y1: 10.0,
                from_ms: 0,
                until_ms: 50,
                loss_rate: 1.0,
            }],
        });
    }

    #[test]
    fn query_type_roundtrips() {
        let q = ttmqo_query::parse_query(
            QueryId(7),
            "select light, temp where 100<light<300 and region(0, 0, 40, 40) epoch duration 4096",
        )
        .unwrap();
        roundtrip(q);
        let agg = ttmqo_query::parse_query(
            QueryId(8),
            "select max(temp), avg(light) where 2 <= nodeid <= 9 epoch duration 2048",
        )
        .unwrap();
        roundtrip(agg);
        roundtrip(PartialAgg::Avg {
            sum: 10.5,
            count: 3,
        });
        roundtrip(EpochAnswer::Rows(vec![Row {
            node: 5,
            time_ms: 2048,
            readings: [(Attribute::Light, 512.0)].into_iter().collect(),
        }]));
        roundtrip(EpochAnswer::Aggregates(vec![AggValue {
            op: AggOp::Max,
            attr: Attribute::Temp,
            value: 99.0,
        }]));
    }

    #[test]
    fn document_roundtrip_and_tags() {
        let mut payload = SnapWriter::new();
        42u64.write(&mut payload);
        let mut b = SnapshotBuilder::new();
        b.section(1, payload.as_bytes());
        b.section(9, &[]);
        let bytes = b.finish();
        let doc = SnapshotDocument::parse(&bytes).unwrap();
        assert_eq!(doc.tags().collect::<Vec<_>>(), vec![1, 9]);
        let mut r = doc.section(1).unwrap();
        assert_eq!(u64::read(&mut r).unwrap(), 42);
        r.finish().unwrap();
        assert!(matches!(doc.section(2), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut b = SnapshotBuilder::new();
        b.section(1, b"abc");
        let mut bytes = b.finish();
        bytes[0] ^= 0xFF;
        assert_eq!(
            SnapshotDocument::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_mismatch_names_both_versions() {
        let mut bytes = SnapshotBuilder::new().finish();
        let stale = SCHEMA_VERSION + 41;
        bytes[8..12].copy_from_slice(&stale.to_le_bytes());
        let err = SnapshotDocument::parse(&bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::VersionMismatch {
                found: stale,
                expected: SCHEMA_VERSION
            }
        );
        let msg = err.to_string();
        assert!(msg.contains(&stale.to_string()), "{msg}");
        assert!(msg.contains(&SCHEMA_VERSION.to_string()), "{msg}");
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let mut payload = SnapWriter::new();
        vec![1u64, 2, 3].write(&mut payload);
        let mut b = SnapshotBuilder::new();
        b.section(1, payload.as_bytes());
        let bytes = b.finish();
        let header_len = SNAPSHOT_MAGIC.len() + 4;
        for cut in 0..bytes.len() {
            if cut == header_len {
                // A bare header is a valid zero-section document.
                assert!(SnapshotDocument::parse(&bytes[..cut]).is_ok());
                continue;
            }
            let err = SnapshotDocument::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let mut payload = SnapWriter::new();
        0xDEAD_BEEFu64.write(&mut payload);
        let mut b = SnapshotBuilder::new();
        b.section(3, payload.as_bytes());
        let pristine = b.finish();
        let payload_start = pristine.len() - 8;
        for byte in payload_start..pristine.len() {
            for bit in 0..8 {
                let mut corrupt = pristine.clone();
                corrupt[byte] ^= 1 << bit;
                assert_eq!(
                    SnapshotDocument::parse(&corrupt).unwrap_err(),
                    SnapshotError::ChecksumMismatch { section: 3 },
                    "flip at byte {byte} bit {bit} must be caught"
                );
            }
        }
    }

    #[test]
    fn decoding_garbage_never_panics() {
        // Hammer the container decoders with arbitrary bytes; everything must
        // come back as Ok or a typed error, never a panic or huge allocation.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..64 {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                bytes.push((state >> 56) as u8);
            }
            let _ = Vec::<u64>::read(&mut SnapReader::new(&bytes));
            let _ = String::read(&mut SnapReader::new(&bytes));
            let _ = BTreeMap::<u64, u64>::read(&mut SnapReader::new(&bytes));
            let _ = Option::<Destination>::read(&mut SnapReader::new(&bytes));
            let _ = Query::read(&mut SnapReader::new(&bytes));
            let _ = SnapshotDocument::parse(&bytes);
        }
    }
}
