//! Energy accounting.
//!
//! The paper uses *average transmission time* as its energy/bandwidth proxy
//! ("radio transmission is the most energy intensive operation a node
//! performs"). This module converts the simulator's time accounting into
//! millijoules under a mote power profile, which also makes the value of
//! sleep mode (saved idle listening) directly visible.

/// Power profile of one mote, Mica2-class defaults.
///
/// # Examples
///
/// ```
/// use ttmqo_sim::EnergyProfile;
///
/// let p = EnergyProfile::default();
/// // One second of transmitting costs more than one of idle listening.
/// assert!(p.tx_mw > p.idle_mw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyProfile {
    /// Radio transmit power, mW.
    pub tx_mw: f64,
    /// Radio receive power, mW.
    pub rx_mw: f64,
    /// Idle listening power (radio on, nothing arriving), mW.
    pub idle_mw: f64,
    /// Sleep power (radio off), mW.
    pub sleep_mw: f64,
    /// Energy per sensor sample, µJ.
    pub sample_uj: f64,
}

impl Default for EnergyProfile {
    fn default() -> Self {
        // CC1000-era figures: TX ≈ 60 mW, RX/idle ≈ 30 mW, sleep ≈ 3 µW,
        // a sample (ADC + sensor warmup) ≈ 90 µJ.
        EnergyProfile {
            tx_mw: 60.0,
            rx_mw: 30.0,
            idle_mw: 30.0,
            sleep_mw: 0.003,
            sample_uj: 90.0,
        }
    }
}

impl EnergyProfile {
    /// Energy, in millijoules, of a node that over `horizon_ms` spent
    /// `tx_ms` transmitting, `rx_ms` receiving and `sleep_ms` asleep, taking
    /// `samples` sensor readings; the remainder is idle listening.
    ///
    /// Times exceeding the horizon are clamped (overlapping rx/tx windows
    /// cannot push idle time below zero).
    pub fn node_energy_mj(
        &self,
        horizon_ms: f64,
        tx_ms: f64,
        rx_ms: f64,
        sleep_ms: f64,
        samples: f64,
    ) -> f64 {
        let busy = (tx_ms + rx_ms + sleep_ms).min(horizon_ms);
        let idle_ms = (horizon_ms - busy).max(0.0);
        (self.tx_mw * tx_ms
            + self.rx_mw * rx_ms
            + self.idle_mw * idle_ms
            + self.sleep_mw * sleep_ms)
            / 1000.0
            + self.sample_uj * samples / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_node_burns_idle_power() {
        let p = EnergyProfile::default();
        let e = p.node_energy_mj(1000.0, 0.0, 0.0, 0.0, 0.0);
        assert!(
            (e - 30.0).abs() < 1e-9,
            "1 s idle at 30 mW = 30 mJ, got {e}"
        );
    }

    #[test]
    fn sleeping_is_cheaper_than_idling() {
        let p = EnergyProfile::default();
        let awake = p.node_energy_mj(1000.0, 0.0, 0.0, 0.0, 0.0);
        let asleep = p.node_energy_mj(1000.0, 0.0, 0.0, 1000.0, 0.0);
        assert!(asleep < awake / 100.0);
    }

    #[test]
    fn transmission_dominates() {
        let p = EnergyProfile::default();
        let quiet = p.node_energy_mj(1000.0, 0.0, 0.0, 0.0, 0.0);
        let chatty = p.node_energy_mj(1000.0, 500.0, 0.0, 0.0, 0.0);
        assert!(chatty > quiet);
    }

    #[test]
    fn busy_time_is_clamped() {
        let p = EnergyProfile::default();
        // tx+rx+sleep exceeding the horizon must not produce negative idle.
        let e = p.node_energy_mj(1000.0, 800.0, 800.0, 0.0, 0.0);
        assert!(e > 0.0);
        assert!(e.is_finite());
    }

    #[test]
    fn samples_add_energy() {
        let p = EnergyProfile::default();
        let none = p.node_energy_mj(1000.0, 0.0, 0.0, 0.0, 0.0);
        let some = p.node_energy_mj(1000.0, 0.0, 0.0, 0.0, 100.0);
        assert!(
            (some - none - 9.0).abs() < 1e-9,
            "100 samples at 90 µJ = 9 mJ"
        );
    }
}
