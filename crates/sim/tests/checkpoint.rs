//! Engine-level checkpoint/restore: resuming from a mid-run snapshot must be
//! observationally *bit-identical* to never having stopped — same outputs,
//! same metrics arithmetic, same RNG draws, same later checkpoints — and a
//! restored checkpoint can be forked under divergent fault plans.

use ttmqo_query::Attribute;
use ttmqo_sim::{
    Ctx, Destination, FaultPlan, MsgKind, NodeApp, NodeId, RadioParams, RandomCrashes, Restorable,
    SimConfig, SimTime, Simulator, SnapReader, SnapWriter, Snapshot, SnapshotError,
    TimeseriesConfig, Topology, UniformField, WindowRecorder,
};

/// A deliberately stateful app: periodic jittered sampling, unicast of a
/// running sum toward the base station, occasional radio sleep — touching
/// timers, the RNG, the frame path, the sleep path and the sensor field.
#[derive(Debug, Clone, PartialEq)]
struct Chatter {
    sent: u64,
    acc: f64,
    heard: u64,
}

impl Chatter {
    fn new() -> Self {
        Chatter {
            sent: 0,
            acc: 0.0,
            heard: 0,
        }
    }
}

impl Snapshot for Chatter {
    fn write(&self, w: &mut SnapWriter) {
        let Chatter { sent, acc, heard } = *self;
        w.put_u64(sent);
        w.put_f64(acc);
        w.put_u64(heard);
    }
}

impl Restorable for Chatter {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Chatter {
            sent: r.u64()?,
            acc: r.f64()?,
            heard: r.u64()?,
        })
    }
}

impl NodeApp for Chatter {
    type Payload = f64;
    type Command = u64;
    type Output = (u64, f64);

    fn on_start(&mut self, ctx: &mut Ctx<'_, f64, (u64, f64)>) {
        if !ctx.is_base_station() {
            let jitter = ctx.rand_u64() % 500;
            ctx.set_timer(100 + jitter, 1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, f64, (u64, f64)>, _key: u64) {
        let v = ctx.read_sensor(Attribute::Light);
        self.acc += v;
        self.sent += 1;
        ctx.send(
            Destination::Unicast(NodeId::BASE_STATION),
            MsgKind::Result,
            8,
            self.acc,
        );
        if ctx.rand_u64().is_multiple_of(4) {
            ctx.sleep_for(50);
        }
        let jitter = ctx.rand_u64() % 400;
        ctx.set_timer(400 + jitter, 1);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, f64, (u64, f64)>,
        _from: NodeId,
        _kind: MsgKind,
        payload: &f64,
    ) {
        self.heard += 1;
        if ctx.is_base_station() && self.heard.is_multiple_of(8) {
            ctx.emit((self.heard, *payload));
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, f64, (u64, f64)>, cmd: u64) {
        ctx.emit((cmd, -1.0));
    }
}

fn build(with_faults: bool) -> Simulator<Chatter> {
    let topo = Topology::grid(4).unwrap();
    let radio = RadioParams {
        loss_rate: 0.05,
        ..RadioParams::default()
    };
    let mut sim = Simulator::new(
        topo,
        radio,
        SimConfig::default(),
        Box::new(UniformField::new(0xF1E1D)),
        |_, _| Chatter::new(),
    );
    sim.set_timeseries(Some(Box::new(WindowRecorder::new(
        16,
        &TimeseriesConfig {
            window_ms: 1000,
            energy: Default::default(),
        },
    ))));
    if with_faults {
        sim.install_fault_plan(&fault_plan(0xFA17));
    }
    sim
}

fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        random_crashes: Some(RandomCrashes {
            fraction: 0.2,
            from_ms: 4_000,
            until_ms: 9_000,
            outage_ms: Some(2_000),
        }),
        ..FaultPlan::default()
    }
}

fn restore(bytes: &[u8]) -> Simulator<Chatter> {
    Simulator::restore(bytes, Box::new(UniformField::new(0xF1E1D)), |_, _| {
        Chatter::new()
    })
    .expect("snapshot restores")
}

#[test]
fn resume_is_bit_identical_to_straight_run() {
    for with_faults in [false, true] {
        let mut straight = build(with_faults);
        straight.run_until(SimTime::from_ms(12_000));

        let mut interrupted = build(with_faults);
        interrupted.run_until(SimTime::from_ms(5_000));
        let bytes = interrupted.checkpoint();
        drop(interrupted);
        let mut resumed = restore(&bytes);
        resumed.run_until(SimTime::from_ms(12_000));

        assert_eq!(
            straight.outputs(),
            resumed.outputs(),
            "faults={with_faults}: outputs diverged"
        );
        assert_eq!(
            straight.metrics().snapshot(),
            resumed.metrics().snapshot(),
            "faults={with_faults}: metrics diverged"
        );
        assert_eq!(straight.engine_stats(), resumed.engine_stats());
        // The strongest equivalence: both futures checkpoint to the same
        // bytes, so every field of the full state matches, not just the
        // observables we thought to compare.
        assert_eq!(
            straight.checkpoint(),
            resumed.checkpoint(),
            "faults={with_faults}: end-state snapshots differ"
        );
    }
}

#[test]
fn checkpoints_can_be_taken_repeatedly_along_one_run() {
    let mut straight = build(false);
    straight.run_until(SimTime::from_ms(12_000));
    let reference = straight.checkpoint();

    // Checkpoint every 3 simulated seconds, restoring the latest each time.
    let mut sim = build(false);
    for t in [3_000u64, 6_000, 9_000, 12_000] {
        sim.run_until(SimTime::from_ms(t));
        let bytes = sim.checkpoint();
        sim = restore(&bytes);
    }
    assert_eq!(sim.checkpoint(), reference);
}

#[test]
fn fork_with_divergent_fault_plans() {
    let mut sim = build(false);
    sim.run_until(SimTime::from_ms(4_000));
    let bytes = sim.checkpoint();

    // Two forks with different fault futures, one control with none.
    let mut fork_a = restore(&bytes);
    fork_a.replace_fault_plan(&fault_plan(1));
    let mut fork_b = restore(&bytes);
    fork_b.replace_fault_plan(&fault_plan(2));
    let mut control = restore(&bytes);
    fork_a.run_until(SimTime::from_ms(12_000));
    fork_b.run_until(SimTime::from_ms(12_000));
    control.run_until(SimTime::from_ms(12_000));

    let (a, b, c) = (
        fork_a.metrics().snapshot(),
        fork_b.metrics().snapshot(),
        control.metrics().snapshot(),
    );
    assert_ne!(a, c, "fork A's crashes must be observable");
    assert_ne!(b, c, "fork B's crashes must be observable");
    assert_ne!(a, b, "different plans must diverge");

    // Same plan twice from the same checkpoint: identical futures.
    let mut twin_a = restore(&bytes);
    twin_a.replace_fault_plan(&fault_plan(1));
    twin_a.run_until(SimTime::from_ms(12_000));
    assert_eq!(twin_a.checkpoint(), fork_a.checkpoint());
}

#[test]
fn replacing_an_existing_plan_retracts_pending_fault_events() {
    // Checkpoint a run that already has crash/recovery events queued, then
    // fork it under a *different* plan: the old plan's events must be gone.
    let mut sim = build(true);
    sim.run_until(SimTime::from_ms(2_000));
    let bytes = sim.checkpoint();

    let mut swapped = restore(&bytes);
    swapped.replace_fault_plan(&FaultPlan::default());
    swapped.run_until(SimTime::from_ms(12_000));
    // FaultPlan::default() is empty: no fault events may fire after the swap.
    assert_eq!(swapped.engine_stats().fault_events, 0);

    let mut kept = restore(&bytes);
    kept.run_until(SimTime::from_ms(12_000));
    assert!(kept.engine_stats().fault_events > 0);
}

#[test]
fn corrupted_snapshots_error_and_never_panic() {
    let mut sim = build(false);
    sim.run_until(SimTime::from_ms(5_000));
    let pristine = sim.checkpoint();

    // Sanity: pristine restores.
    restore(&pristine);

    // Truncation at every prefix length.
    for cut in 0..pristine.len().min(256) {
        let err = Simulator::<Chatter>::restore(
            &pristine[..cut],
            Box::new(UniformField::new(0xF1E1D)),
            |_, _| Chatter::new(),
        )
        .expect_err("truncated snapshot must not restore");
        let _ = err.to_string();
    }
    let err = Simulator::<Chatter>::restore(
        &pristine[..pristine.len() - 1],
        Box::new(UniformField::new(0xF1E1D)),
        |_, _| Chatter::new(),
    )
    .expect_err("truncated snapshot must not restore");
    assert!(matches!(err, SnapshotError::Truncated { .. }));

    // A bit flip anywhere in the document fails closed (header fields fail
    // magic/version/length checks; payload bytes fail the CRC).
    let stride = (pristine.len() / 97).max(1);
    for byte in (0..pristine.len()).step_by(stride) {
        let mut corrupt = pristine.clone();
        corrupt[byte] ^= 0x10;
        let err = Simulator::<Chatter>::restore(
            &corrupt,
            Box::new(UniformField::new(0xF1E1D)),
            |_, _| Chatter::new(),
        )
        .expect_err("bit-flipped snapshot must not restore");
        let _ = err.to_string();
    }
}

#[test]
fn version_mismatch_reports_both_versions() {
    let mut sim = build(false);
    sim.run_until(SimTime::from_ms(1_000));
    let mut bytes = sim.checkpoint();
    let stale = ttmqo_sim::SCHEMA_VERSION + 7;
    bytes[8..12].copy_from_slice(&stale.to_le_bytes());
    let err =
        Simulator::<Chatter>::restore(&bytes, Box::new(UniformField::new(0xF1E1D)), |_, _| {
            Chatter::new()
        })
        .expect_err("stale snapshot must not restore");
    assert_eq!(
        err,
        SnapshotError::VersionMismatch {
            found: stale,
            expected: ttmqo_sim::SCHEMA_VERSION
        }
    );
    let msg = err.to_string();
    assert!(
        msg.contains(&stale.to_string()) && msg.contains(&ttmqo_sim::SCHEMA_VERSION.to_string())
    );
}
