//! Sleep-time accounting and the energy model, end to end.

use ttmqo_sim::{
    ConstantField, Ctx, Destination, EnergyProfile, MsgKind, NodeApp, NodeId, Position,
    RadioParams, SimConfig, SimTime, Simulator, Topology,
};

#[derive(Debug, Default)]
struct Napper;

#[derive(Debug, Clone)]
enum Cmd {
    Sleep(u64),
    Wake,
    Send,
}

impl NodeApp for Napper {
    type Payload = ();
    type Command = Cmd;
    type Output = ();

    fn on_start(&mut self, _: &mut Ctx<'_, (), ()>) {}
    fn on_timer(&mut self, _: &mut Ctx<'_, (), ()>, _: u64) {}
    fn on_message(&mut self, _: &mut Ctx<'_, (), ()>, _: NodeId, _: MsgKind, _: &()) {}
    fn on_command(&mut self, ctx: &mut Ctx<'_, (), ()>, cmd: Cmd) {
        match cmd {
            Cmd::Sleep(ms) => ctx.sleep_for(ms),
            Cmd::Wake => ctx.wake(),
            Cmd::Send => ctx.send(Destination::Unicast(NodeId(0)), MsgKind::Result, 10, ()),
        }
    }
}

fn sim() -> Simulator<Napper> {
    Simulator::new(
        Topology::from_positions(
            vec![Position { x: 0.0, y: 0.0 }, Position { x: 20.0, y: 0.0 }],
            50.0,
        )
        .unwrap(),
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(ConstantField),
        |_, _| Napper,
    )
}

#[test]
fn sleep_time_is_accounted() {
    let mut s = sim();
    s.schedule_command(SimTime::from_ms(100), NodeId(1), Cmd::Sleep(500));
    s.run_until(SimTime::from_ms(1000));
    assert!((s.metrics().node_sleep_ms(1) - 500.0).abs() < 1e-9);
    assert_eq!(s.metrics().node_sleep_ms(0), 0.0);
}

#[test]
fn early_wake_refunds_the_unspent_nap() {
    let mut s = sim();
    s.schedule_command(SimTime::from_ms(100), NodeId(1), Cmd::Sleep(800));
    s.schedule_command(SimTime::from_ms(300), NodeId(1), Cmd::Wake);
    s.run_until(SimTime::from_ms(1000));
    assert!(
        (s.metrics().node_sleep_ms(1) - 200.0).abs() < 1e-6,
        "slept 100..300 = 200 ms, got {}",
        s.metrics().node_sleep_ms(1)
    );
}

#[test]
fn renewed_nap_does_not_double_count() {
    let mut s = sim();
    s.schedule_command(SimTime::from_ms(100), NodeId(1), Cmd::Sleep(400));
    // Re-plan mid-nap: total asleep should be 100..600 = 500 ms.
    s.schedule_command(SimTime::from_ms(200), NodeId(1), Cmd::Sleep(400));
    s.run_until(SimTime::from_ms(1000));
    assert!(
        (s.metrics().node_sleep_ms(1) - 500.0).abs() < 1e-6,
        "got {}",
        s.metrics().node_sleep_ms(1)
    );
}

#[test]
fn sleeping_network_consumes_less_energy() {
    let profile = EnergyProfile::default();
    let run = |sleep: bool| {
        let mut s = sim();
        if sleep {
            s.schedule_command(SimTime::from_ms(0), NodeId(1), Cmd::Sleep(10_000));
        }
        s.run_until(SimTime::from_ms(10_000));
        s.metrics().total_energy_mj(&profile)
    };
    let awake = run(false);
    let asleep = run(true);
    // One of two nodes sleeping the whole run ≈ halves the energy.
    assert!(asleep < awake * 0.6, "{asleep} !< 0.6 × {awake}");
}

#[test]
fn transmitting_costs_more_than_idling() {
    let profile = EnergyProfile::default();
    let run = |sends: usize| {
        let mut s = sim();
        for i in 0..sends {
            s.schedule_command(SimTime::from_ms(10 + i as u64 * 50), NodeId(1), Cmd::Send);
        }
        s.run_until(SimTime::from_ms(10_000));
        s.metrics().total_energy_mj(&profile)
    };
    let quiet = run(0);
    let chatty = run(100);
    assert!(
        chatty > quiet,
        "transmissions must add energy: {chatty} !> {quiet}"
    );
}
