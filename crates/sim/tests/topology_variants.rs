//! Random deployments and the distance-dependent loss model.

use ttmqo_sim::{
    ConstantField, Ctx, Destination, MsgKind, NodeApp, NodeId, Position, RadioParams, SimConfig,
    SimTime, Simulator, Topology, TopologyError,
};

#[test]
fn random_uniform_is_connected_and_deterministic() {
    let a = Topology::random_uniform(40, 200.0, 50.0, 7).unwrap();
    let b = Topology::random_uniform(40, 200.0, 50.0, 7).unwrap();
    assert_eq!(a.node_count(), 40);
    for node in a.nodes() {
        assert_eq!(
            a.position(node).x,
            b.position(node).x,
            "same seed, same layout"
        );
        assert!(a.level(node) < u32::MAX);
    }
    let c = Topology::random_uniform(40, 200.0, 50.0, 8).unwrap();
    let differs = a
        .nodes()
        .skip(1)
        .any(|n| a.position(n).x != c.position(n).x);
    assert!(differs, "different seed, different layout");
}

#[test]
fn random_uniform_base_station_is_at_origin() {
    let t = Topology::random_uniform(25, 150.0, 60.0, 3).unwrap();
    let p = t.position(NodeId::BASE_STATION);
    assert_eq!((p.x, p.y), (0.0, 0.0));
    assert_eq!(t.level(NodeId::BASE_STATION), 0);
}

#[test]
fn impossible_density_reports_disconnected() {
    // 3 nodes over a 10000 ft square with 50 ft range: essentially never
    // connected in 64 deterministic tries.
    let err = Topology::random_uniform(3, 10_000.0, 50.0, 1).unwrap_err();
    assert!(matches!(err, TopologyError::Disconnected(_)));
}

#[test]
fn loss_probability_grows_with_distance() {
    let radio = RadioParams {
        distance_loss: true,
        ..RadioParams::default()
    };
    let near = radio.loss_at(5.0, 50.0);
    let mid = radio.loss_at(30.0, 50.0);
    let edge = radio.loss_at(50.0, 50.0);
    assert!(near < mid && mid < edge);
    assert!(near < 0.01, "close receivers barely lose: {near}");
    assert!(edge >= 0.99, "edge-of-range reception mostly fails: {edge}");
    // Without the model the probability is flat.
    let flat = RadioParams {
        loss_rate: 0.1,
        ..RadioParams::lossless()
    };
    assert_eq!(flat.loss_at(1.0, 50.0), flat.loss_at(49.0, 50.0));
}

/// Minimal echo app for loss-rate measurement.
#[derive(Debug, Default)]
struct Counter {
    received: u32,
}

impl NodeApp for Counter {
    type Payload = u32;
    type Command = ();
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
        if ctx.node() == NodeId(1) {
            for i in 0..200 {
                ctx.set_timer(10 + i * 40, i);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, ()>, key: u64) {
        ctx.send(
            Destination::Unicast(NodeId(0)),
            MsgKind::Result,
            4,
            key as u32,
        );
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u32, ()>, _: NodeId, _: MsgKind, _: &u32) {
        self.received += 1;
    }
    fn on_command(&mut self, _: &mut Ctx<'_, u32, ()>, _: ()) {}
}

fn measure_loss(distance: f64) -> f64 {
    let topo = Topology::from_positions(
        vec![
            Position { x: 0.0, y: 0.0 },
            Position {
                x: distance,
                y: 0.0,
            },
        ],
        50.0,
    )
    .unwrap();
    let radio = RadioParams {
        distance_loss: true,
        max_retries: 0,
        collisions: false,
        ..RadioParams::default()
    };
    let mut sim = Simulator::new(
        topo,
        radio,
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(ConstantField),
        |_, _| Counter::default(),
    );
    sim.run_until(SimTime::from_ms(10_000));
    1.0 - sim.node(NodeId(0)).received as f64 / 200.0
}

#[test]
fn end_to_end_loss_tracks_the_distance_model() {
    let near = measure_loss(10.0);
    let far = measure_loss(45.0);
    assert!(near < 0.05, "near loss {near}");
    assert!(far > 0.4, "far loss {far}");
    assert!(far > near + 0.3);
}
