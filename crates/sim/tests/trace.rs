//! Integration tests of the trace subsystem against a live simulation:
//! event capture through a `RingSink`, byte-identical golden JSONL across
//! runs, and the invariance guarantee that tracing — disabled or enabled —
//! never changes what the simulation computes.

use std::io::Write;
use std::sync::{Arc, Mutex};

use ttmqo_sim::{
    trace_header, ConstantField, Ctx, Destination, EngineStats, JsonLinesSink, MetricsSnapshot,
    MsgKind, NodeApp, NodeId, OutputRecord, Position, RadioParams, RingSink, SimConfig, SimTime,
    Simulator, Topology, TraceEvent, TraceHandle, TraceRecord, TraceSink, SCHEMA_VERSION,
};

/// A scriptable test app: sends frames per external commands and echoes
/// received payloads as outputs.
#[derive(Debug, Default)]
struct Probe;

#[derive(Debug, Clone)]
enum Cmd {
    Send {
        dest: Destination,
        kind: MsgKind,
        bytes: usize,
        tag: String,
    },
    Sleep {
        ms: u64,
    },
}

impl NodeApp for Probe {
    type Payload = String;
    type Command = Cmd;
    type Output = String;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, String, String>) {}

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, String, String>, _key: u64) {}

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, String, String>,
        _from: NodeId,
        _kind: MsgKind,
        payload: &String,
    ) {
        ctx.emit(payload.clone());
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, String, String>, cmd: Cmd) {
        match cmd {
            Cmd::Send {
                dest,
                kind,
                bytes,
                tag,
            } => ctx.send(dest, kind, bytes, tag),
            Cmd::Sleep { ms } => ctx.sleep_for(ms),
        }
    }
}

fn line_topology(n: usize, spacing: f64) -> Topology {
    Topology::from_positions(
        (0..n)
            .map(|i| Position {
                x: i as f64 * spacing,
                y: 0.0,
            })
            .collect(),
        50.0,
    )
    .unwrap()
}

fn new_sim() -> Simulator<Probe> {
    Simulator::new(
        line_topology(4, 20.0),
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(ConstantField),
        |_, _| Probe,
    )
}

/// A busy little scenario: broadcasts, a unicast chain, a nap over a frame,
/// and two deliberately colliding senders.
fn script(sim: &mut Simulator<Probe>) {
    let send = |dest, kind, tag: &str| Cmd::Send {
        dest,
        kind,
        bytes: 24,
        tag: tag.to_string(),
    };
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        send(Destination::Broadcast, MsgKind::QueryPropagation, "b1"),
    );
    sim.schedule_command(
        SimTime::from_ms(40),
        NodeId(2),
        send(Destination::Unicast(NodeId(1)), MsgKind::Result, "u21"),
    );
    // Node 3 naps over node 2's next unicast: a missed frame plus retries.
    sim.schedule_command(SimTime::from_ms(60), NodeId(3), Cmd::Sleep { ms: 40 });
    sim.schedule_command(
        SimTime::from_ms(70),
        NodeId(2),
        send(Destination::Unicast(NodeId(3)), MsgKind::Result, "u23"),
    );
    // Two same-instant broadcasts from nodes in range of each other collide
    // (or CSMA-defer, depending on sensing) at their shared neighbours.
    sim.schedule_command(
        SimTime::from_ms(200),
        NodeId(0),
        send(Destination::Broadcast, MsgKind::Result, "c0"),
    );
    sim.schedule_command(
        SimTime::from_ms(200),
        NodeId(1),
        send(Destination::Broadcast, MsgKind::Result, "c1"),
    );
}

fn run_scenario(
    trace: Option<TraceHandle>,
) -> (EngineStats, MetricsSnapshot, Vec<OutputRecord<String>>) {
    let mut sim = new_sim();
    if let Some(trace) = trace {
        sim.set_trace(trace);
    }
    script(&mut sim);
    sim.run_until(SimTime::from_ms(1000));
    let stats = sim.engine_stats();
    let snapshot = sim.metrics().snapshot();
    (stats, snapshot, sim.take_outputs())
}

#[test]
fn ring_sink_captures_the_scenarios_events() {
    let ring = Arc::new(Mutex::new(RingSink::new(0)));
    let handle = TraceHandle::shared(ring.clone() as Arc<Mutex<dyn TraceSink>>);
    let (stats, snapshot, _) = run_scenario(Some(handle));

    let ring = ring.lock().unwrap();
    let records: Vec<&TraceRecord> = ring.records().collect();
    assert!(!records.is_empty());
    assert_eq!(ring.dropped(), 0, "unbounded ring drops nothing");

    let count = |f: &dyn Fn(&TraceRecord) -> bool| records.iter().filter(|r| f(r)).count() as u64;
    let tx = count(&|r| matches!(r.event, TraceEvent::FrameTx { .. }));
    let delivered = count(&|r| matches!(r.event, TraceEvent::FrameDelivered { .. }));
    let sleeps = count(&|r| matches!(r.event, TraceEvent::SleepStart { .. }));
    let missed = count(&|r| matches!(r.event, TraceEvent::FrameMissed { .. }));

    // Every transmission the metrics counted appears in the trace, and the
    // scripted nap produced its sleep and missed-frame records (the nap
    // expires on its own — explicit `Wake` actions are a different path).
    assert_eq!(tx, snapshot.tx_count.values().sum::<u64>());
    assert!(delivered > 0);
    assert_eq!(sleeps, 1);
    assert!(
        missed >= 1,
        "node 3 slept over a unicast addressed to it: {missed}"
    );
    // Timestamps are plausible: nothing after the horizon.
    assert!(records.iter().all(|r| r.time_us <= 1_000_000));
    // The per-phase breakdown sums back to the total event count.
    assert_eq!(
        stats.timer_events
            + stats.deliver_events
            + stats.command_events
            + stats.maintenance_events
            + stats.fault_events,
        stats.events_processed
    );
}

/// A `Write` implementor that appends into a shared buffer, so the test can
/// read back what a `JsonLinesSink` wrote without touching the filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn jsonl_of_run() -> String {
    let buf = SharedBuf::default();
    let sink = JsonLinesSink::new(buf.clone()).unwrap();
    let (_, _, _) = run_scenario(Some(TraceHandle::new(sink)));
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).unwrap()
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let first = jsonl_of_run();
    let second = jsonl_of_run();
    assert_eq!(first, second, "same seed, same script, same bytes");

    let mut lines = first.lines();
    assert_eq!(lines.next(), Some(trace_header().as_str()));
    assert!(first
        .lines()
        .next()
        .unwrap()
        .contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.contains("\"t\":") && line.contains("\"ev\":\""),
            "{line}"
        );
    }
    assert!(first.lines().count() > 10, "the scenario is not trivial");
}

#[test]
fn tracing_never_changes_what_the_simulation_computes() {
    let untraced = run_scenario(None);
    let disabled = run_scenario(Some(TraceHandle::disabled()));
    let ring = Arc::new(Mutex::new(RingSink::new(0)));
    let enabled = run_scenario(Some(TraceHandle::shared(
        ring.clone() as Arc<Mutex<dyn TraceSink>>
    )));

    assert_eq!(untraced.0, disabled.0, "engine stats, disabled handle");
    assert_eq!(untraced.0, enabled.0, "engine stats, live ring sink");
    assert_eq!(untraced.1, disabled.1, "metrics, disabled handle");
    assert_eq!(untraced.1, enabled.1, "metrics, live ring sink");
    assert_eq!(untraced.2, disabled.2, "outputs, disabled handle");
    assert_eq!(untraced.2, enabled.2, "outputs, live ring sink");
    assert!(
        !ring.lock().unwrap().is_empty(),
        "the enabled run actually traced"
    );
}
