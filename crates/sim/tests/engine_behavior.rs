//! Behavioural tests of the simulation engine: delivery, timers, collisions,
//! retransmission, sleep and determinism.

use ttmqo_sim::{
    ConstantField, Ctx, Destination, FaultPlan, LinkDegradation, MsgKind, NodeApp, NodeId,
    Position, RadioParams, RegionLossOverride, SimConfig, SimTime, Simulator, Topology,
};

/// A scriptable test app: sends frames per a static script and records what
/// it receives and when timers fire.
#[derive(Debug, Default)]
struct Probe {
    received: Vec<(u64, NodeId, String)>,
    timers: Vec<(u64, u64)>,
}

#[derive(Debug, Clone)]
enum Cmd {
    Send {
        dest: Destination,
        kind: MsgKind,
        bytes: usize,
        tag: String,
    },
    Timer {
        delay_ms: u64,
        key: u64,
    },
    Sleep {
        ms: u64,
    },
}

impl NodeApp for Probe {
    type Payload = String;
    type Command = Cmd;
    type Output = String;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, String, String>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, String, String>, key: u64) {
        self.timers.push((ctx.now().as_ms(), key));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, String, String>,
        from: NodeId,
        _kind: MsgKind,
        payload: &String,
    ) {
        self.received
            .push((ctx.now().as_ms(), from, payload.clone()));
        ctx.emit(payload.clone());
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, String, String>, cmd: Cmd) {
        match cmd {
            Cmd::Send {
                dest,
                kind,
                bytes,
                tag,
            } => ctx.send(dest, kind, bytes, tag),
            Cmd::Timer { delay_ms, key } => ctx.set_timer(delay_ms, key),
            Cmd::Sleep { ms } => ctx.sleep_for(ms),
        }
    }
}

fn line_topology(n: usize, spacing: f64) -> Topology {
    Topology::from_positions(
        (0..n)
            .map(|i| Position {
                x: i as f64 * spacing,
                y: 0.0,
            })
            .collect(),
        50.0,
    )
    .unwrap()
}

fn quiet_config() -> SimConfig {
    SimConfig {
        maintenance_interval_ms: None,
        ..SimConfig::default()
    }
}

fn new_sim(topo: Topology, radio: RadioParams) -> Simulator<Probe> {
    Simulator::new(
        topo,
        radio,
        quiet_config(),
        Box::new(ConstantField),
        |_, _| Probe::default(),
    )
}

#[test]
fn unicast_delivers_to_target_only() {
    let mut sim = new_sim(line_topology(3, 20.0), RadioParams::lossless());
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 10,
            tag: "hello".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(sim.node(NodeId(0)).received.len(), 1);
    assert!(sim.node(NodeId(2)).received.is_empty());
    assert_eq!(sim.outputs().len(), 1);
}

#[test]
fn broadcast_reaches_all_neighbors() {
    // 3 nodes, 20ft apart in a line: node 1 reaches both 0 and 2.
    let mut sim = new_sim(line_topology(3, 20.0), RadioParams::lossless());
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Broadcast,
            kind: MsgKind::QueryPropagation,
            bytes: 10,
            tag: "flood".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(sim.node(NodeId(0)).received.len(), 1);
    assert_eq!(sim.node(NodeId(2)).received.len(), 1);
    // One transmission serves both receivers.
    assert_eq!(sim.metrics().tx_count(MsgKind::QueryPropagation), 1);
}

#[test]
fn out_of_range_nodes_receive_nothing() {
    // 60ft apart: out of the 50ft radius — topology would reject a
    // disconnected pair, so use 3 nodes with the far one connected via the
    // middle.
    let topo = line_topology(3, 40.0); // 0-1 and 1-2 connected, 0-2 not (80ft)
    let mut sim = new_sim(topo, RadioParams::lossless());
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(0),
        Cmd::Send {
            dest: Destination::Broadcast,
            kind: MsgKind::Result,
            bytes: 4,
            tag: "x".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(sim.node(NodeId(1)).received.len(), 1);
    assert!(sim.node(NodeId(2)).received.is_empty());
}

#[test]
fn multicast_hits_exactly_the_set() {
    let topo = Topology::grid(3).unwrap();
    let mut sim = new_sim(topo, RadioParams::lossless());
    // Node 4 (center) multicasts to 1 and 3.
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(4),
        Cmd::Send {
            dest: Destination::Multicast(vec![NodeId(1), NodeId(3)]),
            kind: MsgKind::Result,
            bytes: 8,
            tag: "m".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(sim.node(NodeId(1)).received.len(), 1);
    assert_eq!(sim.node(NodeId(3)).received.len(), 1);
    assert!(sim.node(NodeId(0)).received.is_empty());
    assert!(sim.node(NodeId(5)).received.is_empty());
    assert_eq!(
        sim.metrics().tx_count(MsgKind::Result),
        1,
        "one frame on air"
    );
}

#[test]
fn timers_fire_at_requested_times_in_order() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    for (delay, key) in [(500u64, 5u64), (100, 1), (300, 3)] {
        sim.schedule_command(
            SimTime::from_ms(0),
            NodeId(1),
            Cmd::Timer {
                delay_ms: delay,
                key,
            },
        );
    }
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(
        sim.node(NodeId(1)).timers,
        vec![(100, 1), (300, 3), (500, 5)]
    );
}

#[test]
fn transmission_time_is_charged_per_frame() {
    let radio = RadioParams::lossless();
    let expect_ms = radio.tx_time_ms(10);
    let mut sim = new_sim(line_topology(2, 20.0), radio);
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 10,
            tag: "x".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert!((sim.metrics().total_tx_busy_ms() - expect_ms).abs() < 0.01);
    assert!((sim.metrics().total_rx_busy_ms() - expect_ms).abs() < 0.01);
    assert!(sim.metrics().avg_transmission_time_pct() > 0.0);
}

/// Hidden-terminal line: receiver 0 in the middle, senders 1 and 2 at ±45 ft
/// (in range of 0, out of range of each other, so carrier sensing cannot
/// prevent their frames from colliding at 0).
fn hidden_terminal_topology() -> Topology {
    Topology::from_positions(
        vec![
            Position { x: 0.0, y: 0.0 },
            Position { x: -45.0, y: 0.0 },
            Position { x: 45.0, y: 0.0 },
        ],
        50.0,
    )
    .unwrap()
}

#[test]
fn csma_serializes_senders_that_hear_each_other() {
    // Nodes 0,1,2 in a line, 20ft apart: 1 and 2 hear each other, so carrier
    // sensing defers the second transmission — both frames arrive intact.
    let mut radio = RadioParams::lossless();
    radio.collisions = true;
    radio.max_retries = 0;
    let mut sim = new_sim(line_topology(3, 20.0), radio);
    for src in [1u16, 2u16] {
        sim.schedule_command(
            SimTime::from_ms(10),
            NodeId(src),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 20,
                tag: format!("from{src}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(1000));
    assert_eq!(
        sim.node(NodeId(0)).received.len(),
        2,
        "CSMA avoids the collision"
    );
    assert_eq!(sim.metrics().collisions(), 0);
}

#[test]
fn overlapping_frames_collide_at_common_receiver() {
    // Hidden terminals: the senders cannot hear each other, so both transmit
    // simultaneously and corrupt each other at the common receiver.
    let mut radio = RadioParams::lossless();
    radio.collisions = true;
    radio.max_retries = 0;
    let mut sim = new_sim(hidden_terminal_topology(), radio);
    // Both transmit at the same instant → overlap at node 0.
    for src in [1u16, 2u16] {
        sim.schedule_command(
            SimTime::from_ms(10),
            NodeId(src),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 20,
                tag: format!("from{src}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(1000));
    assert!(
        sim.node(NodeId(0)).received.is_empty(),
        "both frames corrupted"
    );
    assert!(sim.metrics().collisions() >= 2);
    assert_eq!(sim.metrics().gave_up(), 2);
}

#[test]
fn unicast_retransmits_after_collision_and_eventually_delivers() {
    let mut radio = RadioParams::lossless();
    radio.collisions = true;
    radio.max_retries = 3;
    let mut sim = new_sim(hidden_terminal_topology(), radio);
    for src in [1u16, 2u16] {
        sim.schedule_command(
            SimTime::from_ms(10),
            NodeId(src),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 20,
                tag: format!("from{src}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(5000));
    // Random backoffs desynchronize the retries; both should get through.
    assert_eq!(sim.node(NodeId(0)).received.len(), 2);
    assert!(sim.metrics().retransmissions() >= 1);
}

#[test]
fn random_loss_drops_frames_and_retries() {
    let mut radio = RadioParams::lossless();
    radio.loss_rate = 1.0; // always lose
    radio.max_retries = 2;
    let mut sim = new_sim(line_topology(2, 20.0), radio);
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 10,
            tag: "x".into(),
        },
    );
    sim.run_until(SimTime::from_ms(5000));
    assert!(sim.node(NodeId(0)).received.is_empty());
    assert_eq!(sim.metrics().retransmissions(), 2);
    assert_eq!(sim.metrics().gave_up(), 1);
    assert_eq!(sim.metrics().losses(), 3, "original + 2 retries all lost");
}

/// Sends `frames` unicast frames from node 1 to node 0 (one pair, `d` feet
/// apart) under the distance-loss model with retries disabled, and returns
/// how many got through.
fn distance_loss_deliveries(d: f64, frames: u64) -> u64 {
    let mut radio = RadioParams::lossless();
    radio.distance_loss = true;
    radio.max_retries = 0;
    let topo = Topology::from_positions(
        vec![Position { x: 0.0, y: 0.0 }, Position { x: d, y: 0.0 }],
        50.0,
    )
    .unwrap();
    let mut sim = new_sim(topo, radio);
    for i in 0..frames {
        sim.schedule_command(
            SimTime::from_ms(10 + i * 50),
            NodeId(1),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 4,
                tag: format!("f{i}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(10 + frames * 50 + 1000));
    sim.node(NodeId(0)).received.len() as u64
}

#[test]
fn distance_loss_degrades_toward_the_range_edge() {
    // Per-receiver loss (d/range)⁴: ~0.16% at 10 ft, ~92% at 49 ft. Over
    // 100 frames the two regimes are far outside each other's noise.
    let near = distance_loss_deliveries(10.0, 100);
    let far = distance_loss_deliveries(49.0, 100);
    assert!(near >= 95, "10 ft link lost too much: {near}/100");
    assert!(far <= 30, "49 ft link delivered too much: {far}/100");
}

#[test]
fn distance_loss_exhausts_unicast_retries_at_the_range_limit() {
    // At exactly d = range the quartic model gives certain loss, so a
    // unicast burns its whole retry budget: max_retries retransmissions,
    // then one give-up, with every attempt counted as a loss.
    let mut radio = RadioParams::lossless();
    radio.distance_loss = true;
    radio.max_retries = 3;
    let topo = Topology::from_positions(
        vec![Position { x: 0.0, y: 0.0 }, Position { x: 50.0, y: 0.0 }],
        50.0,
    )
    .unwrap();
    let mut sim = new_sim(topo, radio);
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "doomed".into(),
        },
    );
    sim.run_until(SimTime::from_ms(10_000));
    assert!(sim.node(NodeId(0)).received.is_empty());
    assert_eq!(sim.metrics().retransmissions(), 3);
    assert_eq!(sim.metrics().gave_up(), 1);
    assert_eq!(sim.metrics().losses(), 4, "original + 3 retries all lost");
    // Each retry is a fresh transmission in the per-kind counters.
    assert_eq!(sim.metrics().tx_count(MsgKind::Result), 4);
}

#[test]
fn sleeping_node_misses_frames_until_wake() {
    let mut radio = RadioParams::lossless();
    radio.max_retries = 0;
    let mut sim = new_sim(line_topology(2, 20.0), radio);
    sim.schedule_command(SimTime::from_ms(5), NodeId(0), Cmd::Sleep { ms: 100 });
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "missed".into(),
        },
    );
    sim.schedule_command(
        SimTime::from_ms(200),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "got".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    let received = &sim.node(NodeId(0)).received;
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].2, "got");
}

#[test]
fn maintenance_beacons_are_accounted_but_not_delivered() {
    let config = SimConfig {
        maintenance_interval_ms: Some(1000),
        maintenance_bytes: 8,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        line_topology(2, 20.0),
        RadioParams::lossless(),
        config,
        Box::new(ConstantField),
        |_, _| Probe::default(),
    );
    sim.run_until(SimTime::from_ms(10_000));
    let beacons = sim.metrics().tx_count(MsgKind::Maintenance);
    assert!((18..=22).contains(&beacons), "got {beacons} beacons");
    assert!(sim.node(NodeId(0)).received.is_empty());
    assert!(sim.node(NodeId(1)).received.is_empty());
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let run = |seed: u64| {
        let mut radio = RadioParams::lossless();
        radio.loss_rate = 0.3;
        radio.max_retries = 3;
        let config = SimConfig {
            seed,
            maintenance_interval_ms: Some(700),
            maintenance_bytes: 8,
        };
        let mut sim = Simulator::new(
            Topology::grid(4).unwrap(),
            radio,
            config,
            Box::new(ConstantField),
            |_, _| Probe::default(),
        );
        for i in 0..10u64 {
            sim.schedule_command(
                SimTime::from_ms(i * 97),
                NodeId((1 + i % 15) as u16),
                Cmd::Send {
                    dest: Destination::Unicast(NodeId(0)),
                    kind: MsgKind::Result,
                    bytes: 12,
                    tag: format!("m{i}"),
                },
            );
        }
        sim.run_until(SimTime::from_ms(20_000));
        (
            sim.metrics().tx_count_total(),
            sim.metrics().retransmissions(),
            sim.metrics().losses(),
            format!("{:?}", sim.node(NodeId(0)).received),
        )
    };
    assert_eq!(run(42), run(42), "same seed, same trace");
    // Different seed almost surely changes the loss pattern.
    assert_ne!(run(42).3, run(43).3);
}

#[test]
fn back_to_back_sends_serialize_on_the_channel() {
    let radio = RadioParams::lossless();
    let per_frame = radio.tx_time_ms(10);
    let mut sim = new_sim(line_topology(2, 20.0), radio);
    for i in 0..3 {
        sim.schedule_command(
            SimTime::from_ms(10),
            NodeId(1),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 10,
                tag: format!("f{i}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(1000));
    let received = &sim.node(NodeId(0)).received;
    assert_eq!(received.len(), 3);
    // Arrival times should be spaced by one frame time, not simultaneous.
    let t: Vec<u64> = received.iter().map(|r| r.0).collect();
    assert!(t[1] >= t[0] + per_frame as u64 - 1);
    assert!(t[2] >= t[1] + per_frame as u64 - 1);
    // No self-collision between a node's own frames.
    assert_eq!(sim.metrics().collisions(), 0);
}

#[test]
fn emitted_outputs_carry_time_and_node() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "out".into(),
        },
    );
    sim.run_until(SimTime::from_ms(100));
    let outputs = sim.take_outputs();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].node, NodeId(0));
    assert!(outputs[0].time.as_ms() >= 10);
    assert_eq!(outputs[0].output, "out");
    assert!(sim.outputs().is_empty(), "take_outputs drains");
}

#[test]
fn commands_to_failed_nodes_are_lost() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    sim.schedule_failure(SimTime::from_ms(5), NodeId(1));
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "dead".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1000));
    assert!(
        sim.node(NodeId(0)).received.is_empty(),
        "a dead node sends nothing"
    );
    assert!(sim.is_failed(NodeId(1)));
}

#[test]
fn recovery_resets_app_state() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    // Deliver one frame, then crash and recover the receiver: the fresh app
    // instance must have empty state.
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Unicast(NodeId(0)),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "x".into(),
        },
    );
    sim.schedule_failure(SimTime::from_ms(100), NodeId(0));
    sim.schedule_recovery(SimTime::from_ms(200), NodeId(0));
    sim.run_until(SimTime::from_ms(300));
    assert!(
        sim.node(NodeId(0)).received.is_empty(),
        "volatile state must be lost on reboot"
    );
    assert!(!sim.is_failed(NodeId(0)));
}

#[test]
fn timers_of_failed_nodes_are_dropped() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    sim.schedule_command(
        SimTime::from_ms(0),
        NodeId(1),
        Cmd::Timer {
            delay_ms: 500,
            key: 1,
        },
    );
    sim.schedule_failure(SimTime::from_ms(100), NodeId(1));
    sim.run_until(SimTime::from_ms(1000));
    assert!(
        sim.node(NodeId(1)).timers.is_empty(),
        "timer fired on a dead node"
    );
}

#[test]
fn multicast_is_not_retransmitted_on_loss() {
    // Documented behaviour: only unicast frames are retried; multicast
    // receivers that lose a frame simply miss it.
    let mut radio = RadioParams::lossless();
    radio.loss_rate = 1.0;
    radio.max_retries = 3;
    let mut sim = new_sim(line_topology(3, 20.0), radio);
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Multicast(vec![NodeId(0), NodeId(2)]),
            kind: MsgKind::Result,
            bytes: 4,
            tag: "m".into(),
        },
    );
    sim.run_until(SimTime::from_ms(2000));
    assert_eq!(sim.metrics().retransmissions(), 0);
    assert!(sim.node(NodeId(0)).received.is_empty());
    assert!(sim.node(NodeId(2)).received.is_empty());
}

/// Topology for the CSMA cap tests: a sender S with two audible neighbours
/// A and B that are hidden from each other, plus a receiver R that hears
/// both S and B (but not A).
///
/// ```text
///   A(-40) --- S(0) -- R(20) -- B(40)      radio range 50
/// ```
fn csma_cap_topology() -> Topology {
    Topology::from_positions(
        [-40.0, 0.0, 20.0, 40.0]
            .iter()
            .map(|&x| Position { x, y: 0.0 })
            .collect(),
        50.0,
    )
    .unwrap()
}

const CSMA_CAP_A: NodeId = NodeId(0);
const CSMA_CAP_S: NodeId = NodeId(1);
const CSMA_CAP_R: NodeId = NodeId(2);
const CSMA_CAP_B: NodeId = NodeId(3);

/// Drives the cap topology: A and B (mutually hidden, so neither defers to
/// the other) each air a long frame, staggered so S hears two chained
/// windows; S then tries to transmit during the first.
fn run_csma_cap_scenario(csma_max_deferrals: u32) -> Simulator<Probe> {
    let mut radio = RadioParams::lossless();
    radio.collisions = true;
    radio.max_retries = 0;
    radio.csma_max_deferrals = csma_max_deferrals;
    let mut sim = new_sim(csma_cap_topology(), radio);
    // Two ~205 ms frames starting 2 ms apart: deferring past A's frame
    // lands the sender inside B's window.
    for (node, at_ms) in [(CSMA_CAP_A, 10), (CSMA_CAP_B, 12)] {
        sim.schedule_command(
            SimTime::from_ms(at_ms),
            node,
            Cmd::Send {
                dest: Destination::Broadcast,
                kind: MsgKind::Result,
                bytes: 1000,
                tag: "long".into(),
            },
        );
    }
    sim.schedule_command(
        SimTime::from_ms(50),
        CSMA_CAP_S,
        Cmd::Send {
            dest: Destination::Broadcast,
            kind: MsgKind::Result,
            bytes: 4,
            tag: "poke".into(),
        },
    );
    sim.run_until(SimTime::from_ms(2_000));
    sim
}

#[test]
fn csma_deferral_cap_falls_through_to_transmit_with_collision() {
    // With a budget of one deferral, the sender jumps past the first
    // audible frame, gives up sensing, and transmits inside the second
    // frame's window — colliding with it at the common receiver R instead
    // of deferring forever.
    let sim = run_csma_cap_scenario(1);
    let stats = sim.engine_stats();
    assert_eq!(
        stats.csma_capped_deferrals, 1,
        "the capped fall-through should have triggered exactly once"
    );
    assert!(
        sim.metrics().collisions() >= 1,
        "the capped transmission should collide rather than defer"
    );
    // All three frames were still put on the air, and the slab recycled.
    assert_eq!(sim.metrics().tx_count_total(), 3);
    assert_eq!(stats.frames_total, 3);
    assert!(sim
        .node(CSMA_CAP_R)
        .received
        .iter()
        .all(|(_, _, t)| t != "long"));
}

#[test]
fn fault_plan_crashes_and_recovers_on_schedule() {
    let mut sim = new_sim(line_topology(2, 20.0), RadioParams::lossless());
    sim.install_fault_plan(&FaultPlan::scripted(vec![(NodeId(1), 100, Some(500))]));
    sim.run_until(SimTime::from_ms(200));
    assert!(sim.is_failed(NodeId(1)));
    sim.run_until(SimTime::from_ms(600));
    assert!(!sim.is_failed(NodeId(1)));
}

#[test]
fn fault_plan_degradation_window_gates_delivery() {
    // A total-loss window from 1 s to 3 s: frames inside it vanish, frames
    // on either side get through.
    let mut radio = RadioParams::lossless();
    radio.max_retries = 0;
    let mut sim = new_sim(line_topology(2, 20.0), radio);
    sim.install_fault_plan(&FaultPlan {
        degradations: vec![LinkDegradation {
            from_ms: 1_000,
            until_ms: 3_000,
            added_loss: 1.0,
        }],
        ..FaultPlan::default()
    });
    for at_ms in [500u64, 2_000, 4_000] {
        sim.schedule_command(
            SimTime::from_ms(at_ms),
            NodeId(1),
            Cmd::Send {
                dest: Destination::Unicast(NodeId(0)),
                kind: MsgKind::Result,
                bytes: 4,
                tag: format!("t{at_ms}"),
            },
        );
    }
    sim.run_until(SimTime::from_ms(6_000));
    let tags: Vec<&str> = sim
        .node(NodeId(0))
        .received
        .iter()
        .map(|(_, _, t)| t.as_str())
        .collect();
    assert_eq!(tags, vec!["t500", "t4000"]);
    assert_eq!(sim.metrics().losses(), 1);
}

#[test]
fn fault_plan_region_override_is_local() {
    // Nodes 0-1-2 in a line; a certain-loss region covers only node 2, so
    // node 1's broadcast reaches 0 but not 2.
    let mut radio = RadioParams::lossless();
    radio.max_retries = 0;
    let mut sim = new_sim(line_topology(3, 20.0), radio);
    sim.install_fault_plan(&FaultPlan {
        region_overrides: vec![RegionLossOverride {
            x0: 35.0,
            y0: -5.0,
            x1: 45.0,
            y1: 5.0,
            from_ms: 0,
            until_ms: u64::MAX,
            loss_rate: 1.0,
        }],
        ..FaultPlan::default()
    });
    sim.schedule_command(
        SimTime::from_ms(10),
        NodeId(1),
        Cmd::Send {
            dest: Destination::Broadcast,
            kind: MsgKind::Result,
            bytes: 4,
            tag: "b".into(),
        },
    );
    sim.run_until(SimTime::from_ms(1_000));
    assert_eq!(sim.node(NodeId(0)).received.len(), 1);
    assert!(sim.node(NodeId(2)).received.is_empty());
}

#[test]
fn empty_fault_plan_leaves_runs_bit_identical() {
    // Installing an empty plan must not perturb the event queue or the RNG
    // stream: the run's full metrics snapshot stays equal to a run that
    // never heard of fault plans.
    let run = |install_empty_plan: bool| {
        let mut radio = RadioParams::lossless();
        radio.loss_rate = 0.3; // active RNG-drawing loss path
        radio.max_retries = 2;
        let config = SimConfig {
            seed: 99,
            maintenance_interval_ms: Some(700),
            maintenance_bytes: 8,
        };
        let mut sim = Simulator::new(
            Topology::grid(4).unwrap(),
            radio,
            config,
            Box::new(ConstantField),
            |_, _| Probe::default(),
        );
        if install_empty_plan {
            sim.install_fault_plan(&FaultPlan::default());
        }
        for i in 0..10u64 {
            sim.schedule_command(
                SimTime::from_ms(i * 131),
                NodeId((1 + i % 15) as u16),
                Cmd::Send {
                    dest: Destination::Unicast(NodeId(0)),
                    kind: MsgKind::Result,
                    bytes: 12,
                    tag: format!("m{i}"),
                },
            );
        }
        sim.run_until(SimTime::from_ms(20_000));
        sim.metrics().snapshot()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn csma_default_budget_defers_clear_of_the_same_backlog() {
    // The identical scenario under the default budget: the sender defers
    // past both windows, so its own frame collides with nothing. (A's and
    // B's long frames still corrupt each other at S — they are hidden
    // terminals — so exactly those two collisions remain.)
    let sim = run_csma_cap_scenario(RadioParams::default().csma_max_deferrals);
    assert_eq!(sim.engine_stats().csma_capped_deferrals, 0);
    assert_eq!(sim.metrics().collisions(), 2);
    assert_eq!(sim.metrics().tx_count_total(), 3);
    // R hears B's long frame and S's poke (A is out of R's range).
    assert_eq!(sim.node(CSMA_CAP_R).received.len(), 2);
}
