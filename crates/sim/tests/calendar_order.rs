//! Property tests pinning the calendar queue's determinism contract: on any
//! stream of pushes and pops — same-time ties, clustered or widely scattered
//! times, pops interleaved with pushes — [`CalendarQueue`] must yield
//! entries in *exactly* the order `BinaryHeap<Reverse<_>>` does. The engine
//! swapped the latter for the former, and its golden snapshots only stay
//! byte-identical if this equivalence is unconditional.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use ttmqo_sim::CalendarQueue;

/// One scripted operation: push an event at a (bounded) time, or pop.
#[derive(Debug, Clone)]
enum Op {
    Push { time: u64 },
    Pop,
}

fn arb_ops(max_time: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        // Pushes outnumber pops 3:1 so queues actually build depth.
        (0..=max_time, 0usize..4).prop_map(
            |(time, sel)| {
                if sel == 0 {
                    Op::Pop
                } else {
                    Op::Push { time }
                }
            },
        ),
        0..len,
    )
}

/// Replays `ops` against both queues simultaneously; every pop must agree on
/// `(time, seq, payload)` — including the `None` at exhaustion.
fn check_equivalence(ops: &[Op]) {
    let mut calendar = CalendarQueue::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Push { time } => {
                seq += 1;
                // Payload = seq doubled, so a pop mismatch distinguishes
                // "wrong key" from "right key, wrong payload".
                calendar.push(time, seq, seq * 2);
                heap.push(Reverse((time, seq, seq * 2)));
            }
            Op::Pop => {
                let expected = heap.pop().map(|Reverse(e)| e);
                let got = calendar.pop();
                assert_eq!(got, expected, "pop diverged at step {step}");
            }
        }
        assert_eq!(calendar.len(), heap.len(), "length diverged at step {step}");
    }
    // Drain what's left: the tail must agree element for element too.
    while let Some(Reverse(expected)) = heap.pop() {
        assert_eq!(calendar.pop(), Some(expected), "drain diverged");
    }
    assert_eq!(calendar.pop(), None, "calendar held extra entries");
}

proptest! {
    /// Scattered times (up to ~100 simulated seconds in µs): events land in
    /// many different buckets and trigger resizes.
    #[test]
    fn pops_match_binary_heap_scattered(ops in arb_ops(100_000_000, 400)) {
        check_equivalence(&ops);
    }

    /// Clustered times (0..64): heavy same-time tie traffic — many events
    /// share one bucket and differ only by seq.
    #[test]
    fn pops_match_binary_heap_clustered(ops in arb_ops(64, 400)) {
        check_equivalence(&ops);
    }

    /// Bucket-boundary times: multiples of large powers of two, the worst
    /// case for slot arithmetic off-by-ones.
    #[test]
    fn pops_match_binary_heap_on_slot_boundaries(
        raw in prop::collection::vec((0u64..200, 0usize..4), 0..300)
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(k, pop)| if pop == 0 {
                Op::Pop
            } else {
                Op::Push { time: k << 14 }
            })
            .collect();
        check_equivalence(&ops);
    }
}

/// A deterministic engine-shaped workload (no proptest shrink budget): a
/// sawtooth of advancing time with bursts of ties and occasional far-future
/// maintenance events, popped down to a rolling horizon — the access pattern
/// `Simulator::run_until` actually generates.
#[test]
fn engine_shaped_stream_matches_binary_heap() {
    let mut ops = Vec::new();
    let mut t = 0u64;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        // splitmix-style scramble, fixed seed: reproducible without RNG deps.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for _ in 0..5_000 {
        match next() % 10 {
            0..=4 => {
                // Near-future event, frequently tying with neighbours.
                ops.push(Op::Push {
                    time: t + next() % 3_000,
                });
            }
            5 | 6 => {
                // Far-future maintenance beacon.
                ops.push(Op::Push {
                    time: t + 30_000_000 + next() % 1_000_000,
                });
            }
            _ => {
                ops.push(Op::Pop);
                t += next() % 2_000; // the horizon advances
            }
        }
    }
    check_equivalence(&ops);
}
