//! Habitat monitoring: the scenario the paper's introduction motivates.
//!
//! A 64-mote deployment monitors a habitat with spatially correlated light,
//! temperature and humidity. Several research groups pose overlapping
//! long-running queries simultaneously — microclimate mapping, frost alerts,
//! canopy-light statistics. The example compares all four strategies on the
//! same workload and shows one group's answers.
//!
//! Run with: `cargo run --release --example habitat_monitoring`

use ttmqo::core::{run_experiment, ExperimentConfig, FieldKind, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, EpochAnswer, ParseQueryError, QueryId};
use ttmqo::sim::{EnergyProfile, MsgKind, SimTime};

fn workload() -> Result<Vec<WorkloadEvent>, ParseQueryError> {
    let queries = [
        // Microclimate group: full maps of the sunlit region.
        "select nodeid, light, temp where 300 <= light <= 1000 epoch duration 4096",
        // Same group, a student's narrower dashboard (covered by the above).
        "select light where 500 <= light <= 900 epoch duration 8192",
        // Frost-alert service: cold-spot rows.
        "select nodeid, temp where -400 <= temp <= 50 epoch duration 4096",
        // Canopy statistics: summary aggregates, derivable from the map.
        "select max(light), min(light) where 300 <= light <= 1000 epoch duration 8192",
        // Humidity logger pair with non-divisible epochs: only the
        // in-network tier can share their common firings.
        "select humidity where 40 <= humidity <= 90 epoch duration 4096",
        "select humidity where 40 <= humidity <= 90 epoch duration 6144",
        // Battery health sweep.
        "select min(voltage) epoch duration 12288",
        // A second full-light mapper from another lab.
        "select light, temp where 250 <= light <= 950 epoch duration 8192",
    ];
    queries
        .iter()
        .enumerate()
        .map(|(i, text)| {
            Ok(WorkloadEvent::pose(
                0,
                parse_query(QueryId(i as u64), text)?,
            ))
        })
        .collect()
}

fn main() -> Result<(), ParseQueryError> {
    let workload = workload()?;
    println!("habitat deployment: 8x8 grid (64 motes), correlated sensor field");
    println!("{} concurrent research queries\n", workload.len());

    println!(
        "{:>12}  {:>14}  {:>12}  {:>8}  {:>11}  {:>8}",
        "strategy", "avg tx time %", "result msgs", "samples", "energy (J)", "saved"
    );
    let mut baseline = None;
    let mut two_tier_report = None;
    for strategy in Strategy::ALL {
        let config = ExperimentConfig {
            strategy,
            grid_n: 8,
            duration: SimTime::from_ms(96 * 2048),
            field: FieldKind::Correlated,
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &workload);
        let tx = report.avg_transmission_time_pct();
        let base = *baseline.get_or_insert(tx);
        println!(
            "{:>12}  {:>14.4}  {:>12}  {:>8}  {:>11.2}  {:>7.1}%",
            strategy.to_string(),
            tx,
            report.metrics.tx_count(MsgKind::Result),
            report.metrics.samples(),
            report.metrics.total_energy_mj(&EnergyProfile::default()) / 1000.0,
            100.0 * (1.0 - tx / base),
        );
        if strategy == Strategy::TwoTier {
            two_tier_report = Some(report);
        }
    }

    let report = two_tier_report.expect("two-tier ran");
    if let Some(stats) = report.optimizer_stats {
        println!(
            "\ntier-1 rewriting: {} user queries -> {:.1} synthetic queries on average \
             ({} insertions absorbed silently)",
            stats.inserted, report.avg_synthetic_count, stats.absorbed_insertions,
        );
    }

    println!("\ncanopy statistics (query q3) under the two-tier scheme:");
    for (epoch_ms, answer) in report.answers[&QueryId(3)].iter().take(4) {
        if let EpochAnswer::Aggregates(vals) = answer {
            let rendered: Vec<String> = vals
                .iter()
                .map(|v| format!("{}({}) = {:.0}", v.op, v.attr, v.value))
                .collect();
            println!("  t = {:>6} ms: {}", epoch_ms, rendered.join(", "));
        }
    }
    println!(
        "\n(q3 never entered the network: its aggregates are computed at the base \
         station from the microclimate group's acquisition stream)"
    );
    Ok(())
}
