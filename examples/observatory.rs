//! Campaign observatory: watch a sweep live, roll it up, and audit it.
//!
//! This example wires together the three observability layers added by the
//! observatory work:
//!
//! * **live progress** — a [`ProgressSink`] attached via
//!   `CampaignSpec::progress` receives one [`CampaignEvent`] per lifecycle
//!   transition (campaign/cell started/finished, heartbeats, ETA). Here the
//!   sink renders each event as a human-readable line *and* forwards it to a
//!   `progress.jsonl` machine-readable stream;
//! * **standing invariant auditor** — `CampaignSpec::audit` promotes the
//!   test-suite's reconciliation checks (phase accounting, slab sanity,
//!   energy conservation, completeness, trace↔answer agreement) into every
//!   cell's record; any violation fails this example with a nonzero exit;
//! * **cross-cell rollup** — `CampaignReport::rollup` aggregates the cell
//!   records into per-axis marginals and hotspot cells, written as
//!   `campaign-report.json` (for `report_diff`) and `campaign-report.md`
//!   (for humans).
//!
//! The telemetry channel is observational only: running with progress and
//! audit enabled produces bit-identical cell records to a bare run.
//!
//! Run with: `cargo run --release --example observatory`
//!
//! Outputs land under `observatory/`: `progress.jsonl`,
//! `campaign-report.json`, `campaign-report.md`, and per-cell traces.

use std::process::ExitCode;

use ttmqo::core::observe::{CampaignEvent, JsonLinesProgress, ProgressSink};
use ttmqo::core::{run_campaign, CampaignSpec, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, QueryId};
use ttmqo::sim::SimTime;

/// Human renderer that tees every event into the JSONL stream.
struct Observatory {
    jsonl: JsonLinesProgress,
}

fn eta(ms: Option<f64>) -> String {
    ms.map_or_else(|| "eta -".to_string(), |ms| format!("eta {ms:.0} ms"))
}

impl ProgressSink for Observatory {
    fn event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::CampaignStarted {
                cells,
                threads,
                warm_start,
            } => println!(
                "observatory: {cells} cells on {threads} threads (warm start: {warm_start})"
            ),
            CampaignEvent::CellStarted {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                fault,
                ..
            } => println!(
                "[{wall_ms:>8.1} ms] -> #{index} {workload}/{strategy}/{grid_n}x{grid_n}/{fault}"
            ),
            CampaignEvent::CellFinished {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                cell_wall_ms,
                events_processed,
                events_per_sec,
                audit_violations,
                completed,
                total,
                eta_ms,
                ..
            } => {
                let audit = match audit_violations {
                    0 => "audit clean".to_string(),
                    n => format!("AUDIT: {n} violations"),
                };
                println!(
                    "[{wall_ms:>8.1} ms] ok #{index} {workload}/{strategy}/{grid_n}x{grid_n}: \
                     {events_processed} ev in {cell_wall_ms:.1} ms ({events_per_sec:.0} ev/s), \
                     {completed}/{total} done, {}, {audit}",
                    eta(*eta_ms),
                );
            }
            CampaignEvent::CellFailed {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                ..
            } => println!(
                "[{wall_ms:>8.1} ms] FAILED #{index} {workload}/{strategy}/{grid_n}x{grid_n}"
            ),
            CampaignEvent::Heartbeat {
                wall_ms,
                completed,
                running,
                total,
                eta_ms,
            } => println!(
                "[{wall_ms:>8.1} ms] .. {completed}/{total} done, {running} running, {}",
                eta(*eta_ms),
            ),
            CampaignEvent::CampaignFinished {
                wall_ms,
                cells,
                warm_prefix_hits,
                audit_violations,
            } => println!(
                "observatory: {cells} cells in {wall_ms:.0} ms \
                 ({warm_prefix_hits} warm prefix hits, {audit_violations} audit violations)"
            ),
        }
        self.jsonl.event(event);
    }

    fn flush(&mut self) {
        self.jsonl.flush();
    }
}

fn main() -> ExitCode {
    let overlap: Vec<WorkloadEvent> = [
        "select light where 280<light<600 epoch duration 2048",
        "select light where 100<light<300 epoch duration 4096",
        "select light where 150<light<500 epoch duration 4096",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        let q = parse_query(QueryId(i as u64 + 1), text).expect("valid query");
        WorkloadEvent::pose(0, q)
    })
    .collect();
    let disjoint: Vec<WorkloadEvent> = [
        "select light where 100<light<200 epoch duration 2048",
        "select temp where 40<temp<60 epoch duration 2048",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        let q = parse_query(QueryId(i as u64 + 1), text).expect("valid query");
        WorkloadEvent::pose(0, q)
    })
    .collect();

    let out_dir = std::path::Path::new("observatory");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let progress = match JsonLinesProgress::create(out_dir.join("progress.jsonl")) {
        Ok(jsonl) => Observatory { jsonl },
        Err(e) => {
            eprintln!("cannot open progress stream: {e}");
            return ExitCode::FAILURE;
        }
    };

    let base = ttmqo::core::ExperimentConfig {
        duration: SimTime::from_ms(12 * 2048),
        ..Default::default()
    };
    // Tracing is on so the auditor can reconcile each cell's trace against
    // its answer counts; audit() arms every other standing check.
    let spec = CampaignSpec::new(base)
        .strategies([Strategy::Baseline, Strategy::TwoTier])
        .grid_sizes([3, 4])
        .workload("overlap", overlap)
        .workload("disjoint", disjoint)
        .trace_output(out_dir.join("traces"))
        .audit()
        .heartbeat_ms(200)
        .progress(progress);

    let report = run_campaign(&spec);

    let rollup = report.rollup();
    let json_path = out_dir.join("campaign-report.json");
    let md_path = out_dir.join("campaign-report.md");
    if let Err(e) = std::fs::write(&json_path, rollup.to_json() + "\n") {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&md_path, rollup.to_markdown()) {
        eprintln!("cannot write {}: {e}", md_path.display());
        return ExitCode::FAILURE;
    }

    println!("\n{}", rollup.to_markdown());
    println!(
        "wrote {}, {}, and {}",
        out_dir.join("progress.jsonl").display(),
        json_path.display(),
        md_path.display(),
    );

    if rollup.is_clean() {
        println!("audit: all {} cells clean", rollup.cells);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "audit: {} violations across {} cells — see {}",
            rollup.audit_violations,
            rollup.cells,
            json_path.display(),
        );
        ExitCode::FAILURE
    }
}
