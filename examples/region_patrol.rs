//! Region-based monitoring with failure injection: a perimeter-patrol
//! scenario exercising the reproduction's extensions together.
//!
//! A 64-mote grid watches a site. Operators pose region-restricted queries
//! (§3.2.2's "region-based queries"): a hot-zone map in the north-west, a
//! wider overlapping climate sweep, and a region aggregate. Mid-run, two
//! motes inside the hot zone crash and later reboot — answers shrink, then
//! recover as the rebooted motes re-learn the queries from their neighbours.
//!
//! Run with: `cargo run --release --example region_patrol`

use ttmqo::core::{TtmqoApp, TtmqoConfig};
use ttmqo::query::{parse_query, EpochAnswer, QueryId};
use ttmqo::sim::{
    MsgKind, NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology, UniformField,
};
use ttmqo::tinydb::{Command, Output};

fn main() {
    let topo = Topology::grid(8).expect("8x8 grid");
    let mut sim = Simulator::new(
        topo,
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(UniformField::new(0xF00D)),
        |_, _| {
            TtmqoApp::new(TtmqoConfig {
                srt: true,
                ..TtmqoConfig::default()
            })
        },
    );

    // The hot zone: the 3×3 north-west corner (x, y ≤ 45 ft ⇒ nodes at
    // 0/20/40 ft coordinates, minus the base station).
    let hot_zone = parse_query(
        QueryId(1),
        "select nodeid, temp where region(0, 0, 45, 45) epoch duration 2048",
    )
    .unwrap();
    // A wider climate sweep covering the western half.
    let sweep = parse_query(
        QueryId(2),
        "select temp, humidity where region(0, 0, 70, 140) epoch duration 4096",
    )
    .unwrap();
    // Region aggregate over the hot zone.
    let peak = parse_query(
        QueryId(3),
        "select max(temp) where region(0, 0, 45, 45) epoch duration 4096",
    )
    .unwrap();

    for q in [&hot_zone, &sweep, &peak] {
        println!("posing: {q}");
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::BASE_STATION,
            Command::Pose(q.clone()),
        );
    }

    // Two hot-zone motes crash at epoch 10 and reboot at epoch 20.
    for node in [9u16, 10] {
        sim.schedule_failure(SimTime::from_ms(10 * 2048), NodeId(node));
        sim.schedule_recovery(SimTime::from_ms(20 * 2048), NodeId(node));
    }

    sim.run_until(SimTime::from_ms(40 * 2048));

    // Row counts of the hot-zone query over time show the outage window.
    println!("\nhot-zone rows per epoch (nodes 1,2,8,9,10,16,17,18 qualify spatially):");
    let mut per_epoch: Vec<(u64, usize)> = sim
        .outputs()
        .iter()
        .filter_map(|o| match &o.output {
            Output::Answer {
                qid,
                epoch_ms,
                answer,
            } if *qid == QueryId(1) => Some((*epoch_ms, answer.len())),
            _ => None,
        })
        .collect();
    per_epoch.sort();
    for window in [(2u64, 9u64), (11, 19), (22, 39)] {
        let counts: Vec<usize> = per_epoch
            .iter()
            .filter(|(e, _)| (window.0 * 2048..=window.1 * 2048).contains(e))
            .map(|&(_, n)| n)
            .collect();
        let label = match window {
            (2, 9) => "healthy  ",
            (11, 19) => "outage   ",
            _ => "recovered",
        };
        let avg = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        println!(
            "  {label} epochs {:>2}-{:>2}: avg {avg:.1} rows",
            window.0, window.1
        );
    }

    // The peak aggregate keeps flowing throughout.
    let peaks = sim
        .outputs()
        .iter()
        .filter(|o| {
            matches!(&o.output, Output::Answer { qid, answer, .. }
            if *qid == QueryId(3) && !matches!(answer, EpochAnswer::Rows(_)))
        })
        .count();
    println!("\nhot-zone MAX(temp) answers delivered: {peaks} epochs");
    println!(
        "query-recovery traffic: {} maintenance frames (requests + shares)",
        sim.metrics().tx_count(MsgKind::Maintenance)
    );
    println!(
        "SRT pruning kept propagation to {} frames (full flood would be 3 × 64 = 192)",
        sim.metrics().tx_count(MsgKind::QueryPropagation)
    );
}
