//! End-to-end tracing quickstart: run one traced campaign cell and follow a
//! query's answers back through the trace.
//!
//! The campaign attaches a JSON-lines trace sink to every cell
//! (`CampaignSpec::trace_output`), so each run writes
//! `traces/trace-<index>-<workload>-<strategy>-<grid_n>-<fault>.jsonl`
//! alongside the usual cell records. This example runs a two-query
//! two-tier cell, then re-reads the trace from disk and shows that the
//! summary reconstructed from the trace alone agrees with the live
//! `CellRecord` — the property the `trace_provenance` integration test
//! asserts exactly. The cell also runs with the per-phase profiler
//! (`CampaignSpec::profile_output`), writing a `profiles/profile-*.json`
//! report next to the trace. CI runs this before `trace_analyze` to
//! produce the trace- and profile-smoke artifacts.
//!
//! Run with: `cargo run --release --example trace_quickstart`

use ttmqo::core::{
    run_campaign_sequential, CampaignSpec, ExperimentConfig, Strategy, WorkloadEvent,
};
use ttmqo::query::{parse_query, QueryId};
use ttmqo::sim::{summarize_trace, SimTime};

fn main() {
    let workload: Vec<WorkloadEvent> = [
        "select light where 100<light<600 epoch duration 2048",
        "select light where 200<light<500 epoch duration 4096",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        let q = parse_query(QueryId(i as u64 + 1), text).expect("valid query");
        WorkloadEvent::pose(0, q)
    })
    .collect();

    let base = ExperimentConfig {
        duration: SimTime::from_ms(12 * 2048),
        ..ExperimentConfig::default()
    };
    let spec = CampaignSpec::new(base)
        .strategies([Strategy::TwoTier])
        .grid_sizes([4])
        .workload("quickstart", workload)
        .trace_output("traces")
        .profile_output("profiles");

    println!("running {} traced cell(s)...", spec.cell_count());
    let report = run_campaign_sequential(&spec);
    let cell = &report.cells[0];
    let trace_file = cell.trace_file.as_ref().expect("tracing was enabled");
    let path = format!("traces/{trace_file}");
    println!(
        "cell: {} / {} / {}x{} -> {path}",
        cell.workload, cell.strategy, cell.grid_n, cell.grid_n
    );
    println!(
        "engine phases: {} timer, {} deliver, {} maintenance events",
        cell.engine.timer_events, cell.engine.deliver_events, cell.engine.maintenance_events
    );
    let profile_file = cell.profile_file.as_ref().expect("profiling was enabled");
    let profile_path = format!("profiles/{profile_file}");
    println!("per-phase profile -> {profile_path}");

    let text = std::fs::read_to_string(&path).expect("trace file written by the campaign");
    let summary = summarize_trace(&text, 2048).expect("trace schema matches the library");
    println!(
        "\ntrace: {} events, {} answers mapped to {} user queries",
        summary.events,
        summary.total_answers(),
        summary.answers_per_query.len(),
    );
    for (qid, n) in &summary.answers_per_query {
        println!(
            "  query {qid}: {n} answers, mean latency {}",
            summary
                .latency_ms_per_query
                .get(qid)
                .filter(|v| !v.is_empty())
                .map_or_else(
                    || "-".to_string(),
                    |v| format!("{:.1} ms", v.iter().sum::<u64>() as f64 / v.len() as f64)
                ),
        );
    }

    // The trace is a faithful record: its per-query answer count equals the
    // live report's answer_epochs.
    let from_trace = summary.total_answers() as usize;
    assert_eq!(
        from_trace, cell.answer_epochs,
        "trace-reconstructed answers must match the live record"
    );
    println!(
        "\ntrace answers ({from_trace}) == live record answer_epochs ({}) ✓",
        cell.answer_epochs
    );
    println!(
        "analyze further with: cargo run --release --example trace_analyze -- {path} \
         --profile {profile_path} --chrome chrome.json"
    );
}
