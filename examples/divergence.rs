//! Trace-divergence localizer: fork one checkpoint under two fault plans,
//! trace both forks, and name the first event where their behaviour
//! departs — kind, simulated time, node — with a context window per side.
//!
//! This is the diagnostic step behind the report-diff gate: when
//! `report_diff` (or CI's baseline comparison) says two runs disagree, you
//! don't eyeball two JSONL files — you re-trace from the last common
//! checkpoint under both configurations and let `trace_diff` localize the
//! first departure and summarize what changed after it.
//!
//! Run with: `cargo run --release --example divergence`

use ttmqo::core::{ExperimentConfig, RunSession, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, ParseQueryError, QueryId};
use ttmqo::sim::{trace_diff, FaultPlan, JsonLinesSink, NodeId, SimTime, TraceHandle};

const EPOCH_MS: u64 = 2048;
const OUT_DIR: &str = "divergence";

fn main() -> Result<(), ParseQueryError> {
    let workload: Vec<WorkloadEvent> = [
        "select light where 280<light<600 epoch duration 2048",
        "select light where 100<light<300 epoch duration 4096",
        "select max(temp) where region(0, 0, 60, 60) epoch duration 2048",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        Ok(WorkloadEvent::pose(
            0,
            parse_query(QueryId(i as u64 + 1), text)?,
        ))
    })
    .collect::<Result<_, ParseQueryError>>()?;

    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(24 * EPOCH_MS),
        ..ExperimentConfig::default()
    };

    // ------------------------------------------------------------------
    // 1. Run to epoch 8 and freeze the common prefix.
    // ------------------------------------------------------------------
    let mut session = RunSession::new(&config, &workload);
    session.run_to(SimTime::from_ms(8 * EPOCH_MS));
    let snapshot = session.checkpoint();
    println!(
        "checkpoint: {} bytes at t = {} ms (epoch 8)",
        snapshot.len(),
        8 * EPOCH_MS
    );

    // ------------------------------------------------------------------
    // 2. Fork the checkpoint under two futures, tracing each fork.
    // ------------------------------------------------------------------
    std::fs::create_dir_all(OUT_DIR).expect("create output directory");
    let forks: &[(&str, FaultPlan)] = &[
        ("calm", FaultPlan::default()),
        (
            "crash",
            FaultPlan::scripted(vec![(NodeId(1), 10 * EPOCH_MS, None)]),
        ),
    ];
    let mut traces = Vec::new();
    for (label, plan) in forks {
        let path = format!("{OUT_DIR}/trace-{label}.jsonl");
        let traced = ExperimentConfig {
            trace: TraceHandle::new(JsonLinesSink::create(&path).expect("create fork trace file")),
            ..config.clone()
        };
        let mut fork = RunSession::restore(&snapshot, &traced, &workload)
            .expect("restoring our own checkpoint");
        fork.replace_fault_plan(plan);
        let report = fork.finish();
        traced.trace.flush();
        let answers: usize = report.answers.values().map(Vec::len).sum();
        println!("fork {label:>6}: {answers} answers, trace at {path}");
        traces.push(std::fs::read_to_string(&path).expect("read fork trace back"));
    }

    // ------------------------------------------------------------------
    // 3. Localize: first diverging event plus per-kind count deltas.
    // ------------------------------------------------------------------
    let diff = trace_diff(&traces[0], &traces[1], 5);
    println!("\ntraces: {} vs {} records", diff.records_a, diff.records_b);
    let div = diff
        .divergence
        .as_ref()
        .expect("a mid-run crash must diverge from a calm run");
    println!("first divergence at record #{}:", div.index);
    for (side, rec, context) in [
        ("calm", &div.a, &div.context_a),
        ("crash", &div.b, &div.context_b),
    ] {
        for line in context {
            println!("  {side:>6}  ...  {line}");
        }
        match rec {
            Some(r) => {
                println!(
                    "  {side:>6}  >>>  {} (t = {} us, node {})",
                    r.kind.as_deref().unwrap_or("?"),
                    r.time_us.map_or_else(|| "?".into(), |t| t.to_string()),
                    r.node.map_or_else(|| "?".into(), |n| n.to_string()),
                );
            }
            None => println!("  {side:>6}  >>>  (trace ends here)"),
        }
    }
    let first_at = div.a.as_ref().and_then(|r| r.time_us);
    if let Some(t) = first_at {
        assert!(
            t >= 8 * EPOCH_MS * 1000,
            "forks share the checkpoint prefix, so divergence is after it"
        );
        println!(
            "\nbehaviour departs {:.1} epochs after the checkpoint (crash at epoch 10)",
            (t as f64 / 1000.0 - 8.0 * EPOCH_MS as f64) / EPOCH_MS as f64
        );
    }

    println!("\nevent-kind count deltas (calm vs crash):");
    for d in &diff.kind_deltas {
        if d.count_a != d.count_b {
            println!(
                "  {:<20} {:>7} vs {:>7} ({:+})",
                d.kind,
                d.count_a,
                d.count_b,
                d.count_b as i64 - d.count_a as i64
            );
        }
    }
    Ok(())
}
