//! Adaptive workload dashboard: queries joining and leaving over time.
//!
//! Replays a random Poisson workload (the Figure 4 model) through the
//! base-station optimizer and prints a timeline of what the network actually
//! sees — most insertions and terminations are absorbed at the base station
//! without any network traffic, which is the first tier's whole point.
//!
//! Run with: `cargo run --release --example adaptive_dashboard`

use ttmqo::core::{BaseStationOptimizer, CostModel, NetworkOp, WorkloadAction};
use ttmqo::query::Attribute;
use ttmqo::sim::Topology;
use ttmqo::stats::{EmpiricalDistribution, LevelStats, SelectivityEstimator};
use ttmqo::workloads::{random_workload, RandomWorkloadParams};

fn main() {
    let events = random_workload(&RandomWorkloadParams {
        n_queries: 40,
        target_concurrency: 8.0,
        nodeid_max: 15.0,
        seed: 2026,
        ..RandomWorkloadParams::default()
    });

    let topo = Topology::grid(4).expect("4x4 grid");
    let mut estimator = SelectivityEstimator::uniform();
    estimator.set_model(
        Attribute::NodeId,
        Box::new(EmpiricalDistribution::from_samples(
            Attribute::NodeId,
            topo.node_count(),
            (1..topo.node_count()).map(|i| i as f64),
        )),
    );
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_levels(topo.levels().iter().copied()),
        estimator,
    );
    let mut opt = BaseStationOptimizer::new(model, 0.6);

    println!(
        "{:>9}  {:<11}  {:<46}  {:>5}  {:>5}  {:>7}",
        "t (s)", "event", "network operations", "users", "syn", "benefit"
    );
    for event in &events {
        let (label, ops) = match &event.action {
            WorkloadAction::Pose(q) => {
                let ops = opt.insert(q.clone()).expect("unique ids");
                (format!("+ {}", q.id()), ops)
            }
            WorkloadAction::Terminate(qid) => (format!("- {qid}"), opt.terminate(*qid)),
        };
        let rendered = if ops.is_empty() {
            "(absorbed at base station)".to_string()
        } else {
            ops.iter()
                .map(|op| match op {
                    NetworkOp::Inject(q) => format!("inject {}", q.id()),
                    NetworkOp::Abort(id) => format!("abort {id}"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{:>9.1}  {:<11}  {:<46}  {:>5}  {:>5}  {:>6.1}%",
            event.at.as_secs_f64(),
            label,
            rendered,
            opt.user_count(),
            opt.synthetic_count(),
            100.0 * opt.benefit_ratio(),
        );
    }

    let stats = opt.stats();
    println!("\nsummary over {} queries:", stats.inserted);
    println!(
        "  {} of {} insertions and {} of {} terminations never touched the network",
        stats.absorbed_insertions, stats.inserted, stats.absorbed_terminations, stats.terminated
    );
    println!(
        "  total network operations: {} injections + {} abortions",
        stats.injections, stats.abortions
    );
}
