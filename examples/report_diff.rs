//! Run-comparison / regression gate: diff two report files field-by-field
//! and exit nonzero when the current run regressed against the baseline.
//!
//! Accepts the repo's two report shapes and auto-detects which one it got:
//!
//! * single JSON objects — the benches' `BENCH_engine.json` /
//!   `BENCH_faults.json`;
//! * JSON lines — campaign outputs (`BENCH_campaign.json`), records paired
//!   by `name` or by the campaign-cell coordinates.
//!
//! Timing fields (`wall_s`, `wall_clock_ms`, `events_per_sec`,
//! `sim_ms_per_wall_s`, and the churn bench's throughput/latency fields)
//! are judged against a direction-aware relative threshold; every other
//! field must match exactly — the simulator is deterministic, so a counter
//! that moved is a behaviour change, not noise.
//! CI runs this against the checked-in baselines under `bench/baselines/`.
//!
//! When the gate fails on an exact field, the next diagnostic step is the
//! trace-divergence localizer (`examples/divergence.rs`): re-trace both
//! configurations from a common checkpoint and it names the first event
//! where behaviour departs instead of leaving you with two counters.
//!
//! ```text
//! cargo run --release --example report_diff -- \
//!     bench/baselines/BENCH_engine.json crates/bench/BENCH_engine.json \
//!     [--threshold 0.25] [--json]
//! ```
//!
//! With `--json` the comparison is emitted as one machine-readable JSON
//! object on stdout (`CompareReport::to_json`); the exit code is unchanged,
//! so scripted callers can both parse the verdicts and gate on the status.

use std::process::ExitCode;

use ttmqo::core::compare::{compare_json, compare_jsonl, CompareOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(t) if t >= 0.0 => opts.timing_threshold = t,
                    _ => {
                        eprintln!("--threshold needs a non-negative number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: report_diff <baseline.json> <current.json> [--threshold 0.25] [--json]");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };

    // A file with more than one non-empty line is a JSON-lines report.
    let is_jsonl = baseline.lines().filter(|l| !l.trim().is_empty()).count() > 1;
    let result = if is_jsonl {
        compare_jsonl(&baseline, &current, &opts)
    } else {
        compare_json(&baseline, &current, &opts)
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("comparison failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report.to_json());
        return if report.is_pass() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!(
        "{} vs {} (timing threshold {:.0}%)",
        baseline_path,
        current_path,
        opts.timing_threshold * 100.0
    );
    print!("{}", report.summary());
    if report.is_pass() {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        println!("FAIL");
        println!(
            "hint: for exact-field mismatches, localize where the runs \
             depart with the trace-divergence example \
             (cargo run --release --example divergence)"
        );
        ExitCode::FAILURE
    }
}
