//! Checkpoint, resume and fork: freeze a two-tier run mid-flight, prove the
//! resumed run is bit-identical to never having stopped, then restore the
//! same checkpoint several times under *divergent* fault plans — a what-if
//! sweep that shares every byte of the common prefix.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use ttmqo::core::{run_experiment, ExperimentConfig, RunSession, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, ParseQueryError, QueryId};
use ttmqo::sim::{FaultPlan, NodeId, SimTime};

const EPOCH_MS: u64 = 2048;

fn main() -> Result<(), ParseQueryError> {
    let workload: Vec<WorkloadEvent> = [
        "select light where 280<light<600 epoch duration 2048",
        "select light where 100<light<300 epoch duration 4096",
        "select max(temp) where region(0, 0, 60, 60) epoch duration 2048",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        Ok(WorkloadEvent::pose(
            0,
            parse_query(QueryId(i as u64 + 1), text)?,
        ))
    })
    .collect::<Result<_, ParseQueryError>>()?;

    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(24 * EPOCH_MS),
        ..ExperimentConfig::default()
    };

    // ------------------------------------------------------------------
    // 1. Checkpoint at epoch 8, resume, compare against the straight run.
    // ------------------------------------------------------------------
    println!("== Checkpoint at epoch 8, resume to the end ==");
    let straight = run_experiment(&config, &workload);

    let mut session = RunSession::new(&config, &workload);
    session.run_to(SimTime::from_ms(8 * EPOCH_MS));
    let snapshot = session.checkpoint();
    println!(
        "snapshot: {} bytes at t = {} ms",
        snapshot.len(),
        8 * EPOCH_MS
    );

    let resumed = RunSession::restore(&snapshot, &config, &workload)
        .expect("restoring our own checkpoint")
        .finish();
    let identical = format!("{resumed:?}") == format!("{straight:?}");
    println!(
        "resumed vs straight: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(identical);

    // ------------------------------------------------------------------
    // 2. Fork the checkpoint under divergent futures: no faults vs a
    //    mid-run crash of the base station's busiest neighbour.
    // ------------------------------------------------------------------
    println!("\n== Forking the same checkpoint under divergent fault plans ==");
    let futures: &[(&str, FaultPlan)] = &[
        ("calm (no faults)", FaultPlan::default()),
        (
            "node 1 crashes at epoch 10",
            FaultPlan::scripted(vec![(NodeId(1), 10 * EPOCH_MS, None)]),
        ),
        (
            "node 1 down epochs 10..16",
            FaultPlan::scripted(vec![(NodeId(1), 10 * EPOCH_MS, Some(16 * EPOCH_MS))]),
        ),
    ];
    for (label, plan) in futures {
        let mut fork = RunSession::restore(&snapshot, &config, &workload)
            .expect("restoring our own checkpoint");
        fork.replace_fault_plan(plan);
        let report = fork.finish();
        let answers: usize = report.answers.values().map(Vec::len).sum();
        println!(
            "{label:>28}: {} answers, avg transmission time {:.4}%",
            answers,
            report.avg_transmission_time_pct()
        );
    }
    println!("\nAll three futures share the identical pre-checkpoint history;");
    println!(
        "everything after t = {} ms is each fork's own.",
        8 * EPOCH_MS
    );
    Ok(())
}
