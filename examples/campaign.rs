//! Campaign runner: sweep strategies × grids × workloads in parallel and
//! collect one observability record per run.
//!
//! A [`CampaignSpec`] names every axis of an experiment sweep declaratively;
//! `run_campaign` executes the cross product on a scoped thread pool, one
//! deterministic simulation per cell, and returns a [`CellRecord`] per run
//! with wall-clock, traffic counters, a full metrics snapshot, and the
//! base-station optimizer's rewrite statistics. The same records serialize
//! to JSON lines for dashboards (`report.to_jsonl()`).
//!
//! Run with: `cargo run --release --example campaign`

use ttmqo::core::{run_campaign, run_campaign_sequential, CampaignSpec, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, QueryId};
use ttmqo::sim::SimTime;

fn main() {
    // A small sweep: two static workloads × {4×4, 8×8} grids × all four
    // strategies = 16 cells. Each cell is an independent simulation, so the
    // pool parallelizes them freely without changing any result.
    let overlap: Vec<WorkloadEvent> = [
        "select light where 280<light<600 epoch duration 2048",
        "select light where 100<light<300 epoch duration 4096",
        "select light where 150<light<500 epoch duration 4096",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        let q = parse_query(QueryId(i as u64 + 1), text).expect("valid query");
        WorkloadEvent::pose(0, q)
    })
    .collect();
    let disjoint: Vec<WorkloadEvent> = [
        "select light where 100<light<200 epoch duration 2048",
        "select temp where 40<temp<60 epoch duration 2048",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| {
        let q = parse_query(QueryId(i as u64 + 1), text).expect("valid query");
        WorkloadEvent::pose(0, q)
    })
    .collect();

    let base = ttmqo::core::ExperimentConfig {
        duration: SimTime::from_ms(16 * 2048),
        ..Default::default()
    };
    let spec = CampaignSpec::new(base)
        .strategies(Strategy::ALL)
        .grid_sizes([4, 8])
        .workload("overlap", overlap)
        .workload("disjoint", disjoint);

    println!("running {} cells...", spec.cell_count());
    let report = run_campaign(&spec);

    println!(
        "{:<9} {:>5} {:>12} {:>14} {:>13} {:>9}",
        "workload", "nodes", "strategy", "avg tx time %", "answer epochs", "wall ms"
    );
    for cell in &report.cells {
        println!(
            "{:<9} {:>5} {:>12} {:>14.4} {:>13} {:>9.1}",
            cell.workload,
            cell.grid_n * cell.grid_n,
            cell.strategy.to_string(),
            cell.avg_transmission_time_pct(),
            cell.answer_epochs,
            cell.wall_clock_ms,
        );
    }
    println!(
        "\ncampaign wall clock: {:.0} ms on {} threads",
        report.wall_clock_ms, report.threads
    );

    // Parallelism is an observational no-op: a sequential run produces the
    // same metrics cell for cell.
    let sequential = run_campaign_sequential(&spec);
    let identical = report
        .cells
        .iter()
        .zip(&sequential.cells)
        .all(|(p, s)| p.metrics == s.metrics);
    println!(
        "sequential re-run: {:.0} ms; per-cell metrics identical: {identical}",
        sequential.wall_clock_ms
    );

    // Each record also renders as one JSON line for external tooling.
    println!("\nfirst record as JSON:");
    println!("{}", report.cells[0].to_json());
}
