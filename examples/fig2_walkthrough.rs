//! Walkthrough of the paper's Figure 2 worked example.
//!
//! Builds the 9-node topology of the figure (base station + A…H), places the
//! data exactly as the figure does (D,E,F,G,H answer q_i; D,G,H answer q_j),
//! and compares TinyDB's fixed routing tree against the TTMQO DAG, for both
//! the acquisition and the aggregation variant.
//!
//! Run with: `cargo run --release --example fig2_walkthrough`

use ttmqo::sim::NodeId;
use ttmqo_bench::fig2::{fig2_counts, fig2_queries, fig2_topology, NAMES};

fn main() {
    let topo = fig2_topology();
    println!("Figure 2 topology (radio range 50 ft):\n");
    println!(
        "{:>4} {:>7} {:>7} {:>6} {:>14} {:>22}",
        "node", "x", "y", "level", "tinydb parent", "upper neighbours"
    );
    for i in 0..9u16 {
        let id = NodeId(i);
        let pos = topo.position(id);
        let parent = topo
            .default_parent(id)
            .map(|p| NAMES[p.index()].to_string())
            .unwrap_or_else(|| "-".into());
        let uppers: Vec<&str> = topo
            .upper_neighbors(id)
            .into_iter()
            .map(|n| NAMES[n.index()])
            .collect();
        println!(
            "{:>4} {:>7.0} {:>7.0} {:>6} {:>14} {:>22}",
            NAMES[i as usize],
            pos.x,
            pos.y,
            topo.level(id),
            parent,
            uppers.join(",")
        );
    }

    let (qi, qj) = fig2_queries(false);
    println!("\nq_i: {qi}");
    println!("q_j: {qj}");
    println!("data: light=500 at D,E,F,G,H; temp=50 at D,G,H\n");

    for (label, aggregation, paper) in [
        (
            "acquisition",
            false,
            "paper: 20 msgs/8 nodes vs 12 msgs/6 nodes",
        ),
        ("aggregation", true, "paper: 14 msgs vs 7 msgs"),
    ] {
        let (tinydb, ttmqo) = fig2_counts(aggregation);
        println!("== {label} variant ({paper}) ==");
        println!(
            "  TinyDB fixed tree : {:>5.1} result msgs/epoch, {} nodes transmitting",
            tinydb.messages_per_epoch, tinydb.nodes_involved
        );
        println!(
            "  TTMQO dynamic DAG : {:>5.1} result msgs/epoch, {} nodes transmitting",
            ttmqo.messages_per_epoch, ttmqo.nodes_involved
        );
        println!(
            "  saved: {:.0}%\n",
            100.0 * (1.0 - ttmqo.messages_per_epoch / tinydb.messages_per_epoch)
        );
    }
    println!(
        "In the DAG runs, G routes through D (which has data for both queries)\n\
         instead of its fixed parent C — so C and its parent A transmit nothing\n\
         and can sleep, and one shared frame from each source answers both queries.\n\
         For aggregation our shared frame also packs node B's two per-query\n\
         partials together, beating the paper's count by one."
    );
}
