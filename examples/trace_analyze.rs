//! Trace analyzer: turn a trace JSONL file into a human-readable summary
//! and, optionally, a Chrome trace-event file for `chrome://tracing` /
//! Perfetto.
//!
//! The summary reconstructs what the run did from the trace alone: event
//! counts by kind, per-user-query answer counts and latency, the hop-count
//! distribution of delivered result provenances, and per-epoch rollups of
//! radio activity. `ttmqo::sim::summarize_trace` is the same code path the
//! provenance test uses to prove the trace is a faithful record of the run.
//!
//! With `--profile`, a campaign `profile-*.json` report (see
//! `CampaignSpec::profile_output`) is read back, its phase ranking printed,
//! and its spans merged into the `--chrome` export as a second process row
//! above the simulated-event timeline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_analyze -- traces/trace-0-....jsonl \
//!     [--epoch-ms 2048] [--chrome chrome.json] [--profile profile-0-....json] \
//!     [--json]
//! ```
//!
//! With `--json` the summary is emitted as one machine-readable JSON object
//! on stdout (`TraceSummary::to_json`) instead of the human tables; `--chrome`
//! and `--profile` still work, with their status lines moved to stderr.

use std::process::ExitCode;

use ttmqo::sim::{chrome_trace_with_profile, summarize_trace, ProfileReport};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut epoch_ms: u64 = 2048;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--chrome" => {
                i += 1;
                chrome_out = args.get(i).cloned();
                if chrome_out.is_none() {
                    eprintln!("--chrome needs an output path");
                    return ExitCode::FAILURE;
                }
            }
            "--profile" => {
                i += 1;
                profile_path = args.get(i).cloned();
                if profile_path.is_none() {
                    eprintln!("--profile needs a profile-*.json path");
                    return ExitCode::FAILURE;
                }
            }
            "--epoch-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(ms) => epoch_ms = ms,
                    None => {
                        eprintln!("--epoch-ms needs an integer argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!(
            "usage: trace_analyze <trace.jsonl> [--epoch-ms 2048] \
             [--chrome out.json] [--profile profile.json] [--json]"
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let summary = match summarize_trace(&text, epoch_ms) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("cannot analyze {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", summary.to_json());
    } else {
        match summary.schema_version {
            Some(v) => println!("trace {path} (schema v{v})"),
            None => println!("trace {path} (no schema header)"),
        }
        println!("{} events", summary.events);
        if summary.malformed_lines > 0 {
            println!("{} malformed lines skipped", summary.malformed_lines);
        }
        if summary.dropped_records > 0 {
            println!(
                "{} records dropped at capture time (ring eviction)",
                summary.dropped_records
            );
        }
        if summary.truncated_tail {
            println!("final line truncated (crash-time trace tail tolerated)");
        }

        println!("\nevents by kind:");
        for (kind, n) in &summary.by_kind {
            println!("  {kind:<20} {n:>8}");
        }
    }

    if !json && !summary.answers_per_query.is_empty() {
        println!("\nper-query answers:");
        println!(
            "  {:<8} {:>8} {:>9} {:>13}",
            "query", "answers", "nonempty", "mean lat ms"
        );
        for (qid, n) in &summary.answers_per_query {
            let nonempty = summary.nonempty_per_query.get(qid).copied().unwrap_or(0);
            let lat = summary
                .latency_ms_per_query
                .get(qid)
                .filter(|v| !v.is_empty())
                .map(|v| v.iter().sum::<u64>() as f64 / v.len() as f64);
            match lat {
                Some(ms) => println!("  {qid:<8} {n:>8} {nonempty:>9} {ms:>13.1}"),
                None => println!("  {qid:<8} {n:>8} {nonempty:>9} {:>13}", "-"),
            }
        }
        println!(
            "  total {} answers, mean latency {}",
            summary.total_answers(),
            summary
                .mean_latency_ms()
                .map_or_else(|| "-".to_string(), |ms| format!("{ms:.1} ms")),
        );
    }

    if !json && !summary.hop_distribution.is_empty() {
        println!("\nhop distribution (delivered provenances):");
        for (hops, n) in &summary.hop_distribution {
            println!("  {hops:>2} hops  {n:>8}");
        }
    }

    if !json && !summary.rollups.is_empty() {
        println!("\nper-epoch rollups ({epoch_ms} ms buckets):");
        println!(
            "  {:>9} {:>6} {:>5} {:>6} {:>7} {:>6} {:>5} {:>8} {:>8}",
            "epoch ms", "tx", "coll", "loss", "retry", "sleep", "rows", "answers", "nonempty"
        );
        for r in &summary.rollups {
            println!(
                "  {:>9} {:>6} {:>5} {:>6} {:>7} {:>6} {:>5} {:>8} {:>8}",
                r.epoch_ms,
                r.tx,
                r.collisions,
                r.losses,
                r.retries,
                r.sleeps,
                r.rows_delivered,
                r.answers,
                r.nonempty_answers,
            );
        }
    }

    let profile = match &profile_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(json) => match ProfileReport::from_json(&json) {
                Some(report) => Some(report),
                None => {
                    eprintln!("{p} is not a profile report");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(report) = profile.as_ref().filter(|_| !json) {
        println!(
            "\nper-phase profile ({}):",
            profile_path.as_deref().unwrap()
        );
        println!(
            "  {:<20} {:>10} {:>10} {:>10}",
            "phase", "wall us", "events", "ns/event"
        );
        let mut phases = report.phases.clone();
        phases.sort_by_key(|p| std::cmp::Reverse(p.wall_ns));
        for p in phases.iter().filter(|p| p.events > 0) {
            println!(
                "  {:<20} {:>10} {:>10} {:>10.0}",
                p.phase.name(),
                p.wall_us(),
                p.events,
                p.ns_per_event()
            );
        }
    }

    if let Some(out) = chrome_out {
        let chrome_json = chrome_trace_with_profile(&text, profile.as_ref());
        if let Err(e) = std::fs::write(&out, chrome_json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        let note = match profile.is_some() {
            true => format!(
                "wrote Chrome trace-event JSON (with profiler spans) to {out} \
                 (load in chrome://tracing)"
            ),
            false => format!("wrote Chrome trace-event JSON to {out} (load in chrome://tracing)"),
        };
        // In --json mode stdout carries exactly one JSON document.
        match json {
            true => eprintln!("{note}"),
            false => println!("\n{note}"),
        }
    }
    ExitCode::SUCCESS
}
