//! Hotspot & imbalance analysis: where does the transmission load actually
//! land on the grid, and does two-tier sharing flatten it?
//!
//! Runs Workload A on the paper's 8×8 grid under both strategies with
//! time-series collection enabled, then prints a per-node tx-busy heat
//! table laid out by grid position (node `i` sits at row `i / n`, column
//! `i % n`; the base station is node 0 at the origin corner), followed by
//! the run-level imbalance statistics: Gini coefficient and max/mean ratio
//! over per-node tx-busy totals, the worst single-window Gini, and the
//! energy totals. Each run also carries the per-phase profiler, so the
//! final section ranks where the *simulator's* wall time goes for each
//! strategy — the spatial heat tables say where the simulated radio load
//! lands, the phase ranking says what that load costs to simulate. The
//! markdown tables in EXPERIMENTS.md §"Hotspots & imbalance" are generated
//! by this example.
//!
//! Run with: `cargo run --release --example hotspots`

use ttmqo::core::{run_experiment, ExperimentConfig, RunReport, Strategy};
use ttmqo::sim::{gini, max_mean_ratio, ProfileHandle, SimTime, TimeseriesConfig};
use ttmqo::workloads::workload_a;

const GRID_N: usize = 8;
const EPOCHS: u64 = 24;

fn run(strategy: Strategy) -> RunReport {
    let config = ExperimentConfig {
        strategy,
        grid_n: GRID_N,
        duration: SimTime::from_ms(EPOCHS * 2048),
        timeseries: Some(TimeseriesConfig::default()),
        profile: ProfileHandle::enabled(),
        ..ExperimentConfig::default()
    };
    run_experiment(&config, &workload_a())
}

fn heat_table(strategy: Strategy, report: &RunReport) -> Vec<f64> {
    let series = report.timeseries.as_ref().expect("timeseries enabled");
    let totals: Vec<f64> = (0..series.nodes.nodes)
        .map(|i| series.nodes.node_total_tx_busy_ms(i))
        .collect();

    println!("### {strategy}: per-node tx busy (ms)\n");
    print!("| row\\col |");
    for col in 0..GRID_N {
        print!(" {col} |");
    }
    println!();
    print!("|---|");
    for _ in 0..GRID_N {
        print!("---|");
    }
    println!();
    for row in 0..GRID_N {
        print!("| **{row}** |");
        for col in 0..GRID_N {
            print!(" {:.1} |", totals[row * GRID_N + col]);
        }
        println!();
    }
    println!();
    totals
}

fn main() {
    println!("Workload A, {GRID_N}x{GRID_N} grid, {EPOCHS} base epochs, default radio.\n");
    let mut summary: Vec<(Strategy, Vec<f64>, f64, f64)> = Vec::new();
    let mut profiles = Vec::new();
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        let report = run(strategy);
        let totals = heat_table(strategy, &report);
        summary.push((
            strategy,
            totals,
            report.energy_mj,
            report.max_node_energy_mj,
        ));
        let series = report.timeseries.as_ref().unwrap();
        println!(
            "peak single-window gini: {:.3}\n",
            series.nodes.peak_gini_tx_busy()
        );
        profiles.push((strategy, report.profile.expect("profiling enabled")));
    }

    println!("### Imbalance summary\n");
    println!(
        "| strategy | total tx busy (ms) | gini(tx busy) | max/mean | energy (mJ) | max node energy (mJ) |"
    );
    println!("|---|---|---|---|---|---|");
    for (strategy, totals, energy, max_energy) in &summary {
        println!(
            "| {strategy} | {:.1} | {:.3} | {:.2} | {:.1} | {:.1} |",
            totals.iter().sum::<f64>(),
            gini(totals),
            max_mean_ratio(totals),
            energy,
            max_energy,
        );
    }

    // Where the simulator's own wall time goes, hottest phase first. The
    // engine-phase percentages are shares of the engine event loop;
    // runner phases (admission scoring, re-optimization, answer mapping)
    // are listed with absolute time only.
    println!("\n### Simulator phase ranking (per strategy)\n");
    for (strategy, profile) in &profiles {
        let engine_ns = profile.engine_event_wall_ns().max(1) as f64;
        let mut phases = profile.phases.clone();
        phases.sort_by_key(|p| std::cmp::Reverse(p.wall_ns));
        println!("**{strategy}**\n");
        println!("| phase | wall µs | events | ns/event | % of engine loop |");
        println!("|---|---|---|---|---|");
        for p in phases.iter().filter(|p| p.events > 0) {
            let share = if p.phase.is_engine_event_phase() {
                format!("{:.1}%", p.wall_ns as f64 / engine_ns * 100.0)
            } else {
                "-".to_string()
            };
            println!(
                "| {} | {} | {} | {:.0} | {share} |",
                p.phase.name(),
                p.wall_us(),
                p.events,
                p.ns_per_event(),
            );
        }
        println!();
    }
}
