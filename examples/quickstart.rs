//! Quickstart: pose a handful of overlapping queries, watch the base-station
//! optimizer rewrite them, run the full two-tier scheme on a simulated 4×4
//! grid, and read the answers back.
//!
//! Run with: `cargo run --release --example quickstart`

use ttmqo::core::{
    run_experiment, BaseStationOptimizer, CostModel, ExperimentConfig, NetworkOp, Strategy,
    WorkloadEvent,
};
use ttmqo::query::{parse_query, EpochAnswer, ParseQueryError, QueryId};
use ttmqo::sim::{SimTime, Topology};
use ttmqo::stats::{LevelStats, SelectivityEstimator};

fn main() -> Result<(), ParseQueryError> {
    // ------------------------------------------------------------------
    // 1. The paper's §3.1.3 worked example, through the optimizer alone.
    // ------------------------------------------------------------------
    let q1 = parse_query(
        QueryId(1),
        "select light where 280<light<600 epoch duration 2048",
    )?;
    let q2 = parse_query(
        QueryId(2),
        "select light where 100<light<300 epoch duration 4096",
    )?;
    let q3 = parse_query(
        QueryId(3),
        "select light where 150<light<500 epoch duration 4096",
    )?;

    let topo = Topology::grid(4).expect("4x4 grid");
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_levels(topo.levels().iter().copied()),
        SelectivityEstimator::uniform(),
    );
    let mut optimizer = BaseStationOptimizer::new(model, 0.6);

    println!("== Tier 1: greedy query rewriting (paper §3.1.3 example) ==");
    for q in [&q1, &q2, &q3] {
        println!("user poses:   {q}");
        let ops = optimizer.insert(q.clone()).expect("fresh ids");
        for op in &ops {
            match op {
                NetworkOp::Inject(s) => println!("  -> inject  {s}"),
                NetworkOp::Abort(id) => println!("  -> abort   {id}"),
            }
        }
        if ops.is_empty() {
            println!("  -> absorbed at the base station (covered)");
        }
    }
    println!(
        "running synthetic queries: {} (benefit ratio {:.1}%)",
        optimizer.synthetic_count(),
        100.0 * optimizer.benefit_ratio()
    );

    // ------------------------------------------------------------------
    // 2. The same queries end-to-end on the simulated network.
    // ------------------------------------------------------------------
    println!("\n== End-to-end: baseline vs two-tier TTMQO on a 4x4 grid ==");
    let workload: Vec<WorkloadEvent> = [q1, q2, q3]
        .into_iter()
        .map(|q| WorkloadEvent::pose(0, q))
        .collect();

    let mut two_tier_report = None;
    for strategy in Strategy::ALL {
        let config = ExperimentConfig {
            strategy,
            grid_n: 4,
            duration: SimTime::from_ms(80 * 2048),
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &workload);
        println!(
            "{:>12}: avg transmission time {:.4}%  ({} result messages)",
            strategy.to_string(),
            report.avg_transmission_time_pct(),
            report.metrics.tx_count(ttmqo::sim::MsgKind::Result)
        );
        if strategy == Strategy::TwoTier {
            two_tier_report = Some(report);
        }
    }

    // ------------------------------------------------------------------
    // 3. Answers are exact per user query despite the rewriting.
    // ------------------------------------------------------------------
    let report = two_tier_report.expect("two-tier ran");
    println!("\n== Answers delivered to user query q1 (first 3 epochs) ==");
    for (epoch_ms, answer) in report.answers[&QueryId(1)].iter().take(3) {
        match answer {
            EpochAnswer::Rows(rows) => {
                println!("epoch {epoch_ms}: {} qualifying node(s)", rows.len());
                for row in rows.iter().take(4) {
                    println!("  node {:>2}: {}", row.node, row.readings);
                }
            }
            EpochAnswer::Aggregates(vals) => {
                for v in vals {
                    println!("epoch {epoch_ms}: {}({}) = {}", v.op, v.attr, v.value);
                }
            }
        }
    }
    Ok(())
}
